//! Serving metrics, exported in Prometheus text-exposition format.
//!
//! Built on the [`obs`] registry: every instrument is registered once
//! at construction and held as an `Arc` handle, so the hot path is a
//! couple of relaxed atomic ops per event — the registry mutex is only
//! taken at startup and at `/metrics` render time. The solver-phase
//! families (`mpmb_solver_phase_seconds`, …) land on the same registry
//! via [`obs::SolverMetrics`], so one `/metrics` scrape carries the
//! whole stack from HTTP edge to trial kernel.

use obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::time::Duration;

/// The endpoints with per-endpoint series. Order defines export order.
pub const ENDPOINTS: &[&str] = &[
    "solve", "query", "count", "topk", "graphs", "healthz", "metrics", "admin", "debug",
    "internal", "other",
];

/// Latency histogram bucket upper bounds, in seconds.
const BUCKETS: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Statuses tracked per endpoint (everything else folds into `other`).
const STATUSES: &[u16] = &[200, 400, 404, 429, 503];

/// Deadline-budget bucket names, in export order: each solve-like
/// request's wall time is attributed across exactly these buckets (see
/// [`crate::server::Budget`]) and observed into one
/// `mpmb_deadline_spent_seconds{bucket=…}` histogram per name.
pub const BUDGET_BUCKETS: [&str; 6] = [
    "queue",
    "materialize",
    "prepare",
    "trials",
    "network",
    "finalize",
];

/// Pre-created handles for one endpoint.
struct EndpointHandles {
    /// Requests by status: indices follow `STATUSES`, last slot = other.
    by_status: Vec<Arc<Counter>>,
    latency: Arc<Histogram>,
}

/// All serving metrics. One instance per server, shared via `Arc`.
pub struct Metrics {
    registry: Arc<Registry>,
    endpoints: Vec<EndpointHandles>,
    /// Result-cache hits.
    pub cache_hits: Arc<Counter>,
    /// Result-cache misses.
    pub cache_misses: Arc<Counter>,
    /// Requests that resumed a cached partial result (cache refinement).
    pub cache_refined: Arc<Counter>,
    /// Monte-Carlo trials executed by solvers (partial runs included).
    pub trials_executed: Arc<Counter>,
    /// Requests rejected because the accept queue was full.
    pub load_shed: Arc<Counter>,
    /// Requests that hit their deadline and returned 503.
    pub deadline_exceeded: Arc<Counter>,
    /// Requests currently being processed by workers.
    pub inflight: Arc<Gauge>,
    /// Connections accepted.
    pub connections: Arc<Counter>,
    /// Snapshots durably written to the checkpoint directory.
    pub checkpoint_written: Arc<Counter>,
    /// Partial results restored from a snapshot at startup.
    pub checkpoint_restored: Arc<Counter>,
    /// Snapshots skipped at startup because they failed verification.
    pub checkpoint_corrupt: Arc<Counter>,
    /// Worker panics caught at the connection boundary.
    pub worker_panics: Arc<Counter>,
    /// Faults injected by the active fault plan.
    pub faults_injected: Arc<Counter>,
    /// Cluster members this coordinator is configured with (0 when not
    /// a coordinator).
    pub cluster_workers: Arc<Gauge>,
    /// Trial ranges dispatched to cluster workers (first dispatch and
    /// re-dispatches both count).
    pub cluster_ranges_dispatched: Arc<Counter>,
    /// Ranges re-dispatched after a worker failed or returned an
    /// incomplete range — resume semantics mean only the *remaining*
    /// trials of the range run again.
    pub cluster_redispatch: Arc<Counter>,
    /// Worker calls that failed at the transport or decode layer (the
    /// worker is marked down until a probe revives it).
    pub cluster_worker_errors: Arc<Counter>,
    /// Health probes that failed (the probed worker is marked down).
    pub cluster_probe_failures: Arc<Counter>,
    /// Container-backed graphs evicted from residency by the memory
    /// budget.
    pub graph_evictions: Arc<Counter>,
    /// Container materializations (first use and every post-eviction
    /// reload).
    pub graph_materializations: Arc<Counter>,
    /// Worker `/metrics` scrapes attempted by `GET /metrics/cluster`.
    pub federation_scrapes: Arc<Counter>,
    /// Federation scrapes that failed (worker unreachable or non-200).
    pub federation_scrape_failures: Arc<Counter>,
    /// `method=fast` solve/count requests served from the sublinear
    /// tier (completed fast answers; partials don't count).
    pub fast_requests: Arc<Counter>,
    /// Fast answers whose certified CI missed the requested relative
    /// error, scheduling an exact-tier escalation partial.
    pub fast_escalations: Arc<Counter>,
    /// Certified relative error of completed fast answers.
    pub fast_relative_error: Arc<Histogram>,
    /// Per-bucket deadline-spend histograms, [`BUDGET_BUCKETS`] order.
    budget_spent: Vec<Arc<Histogram>>,
}

/// Index of an endpoint name in [`ENDPOINTS`].
pub fn endpoint_index(path: &str) -> usize {
    let name = match path {
        "/v1/solve" => "solve",
        "/v1/query" => "query",
        "/v1/count" => "count",
        "/v1/topk" => "topk",
        "/v1/graphs" => "graphs",
        "/healthz" => "healthz",
        "/metrics" | "/metrics/cluster" => "metrics",
        p if p.starts_with("/admin/") => "admin",
        p if p.starts_with("/debug/") => "debug",
        p if p.starts_with("/v1/internal/") => "internal",
        _ => "other",
    };
    ENDPOINTS.iter().position(|&e| e == name).unwrap()
}

impl Default for Metrics {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        // Registration order is render order; keep the families in the
        // order the previous hand-rolled exporter used.
        let endpoints = ENDPOINTS
            .iter()
            .map(|name| {
                let by_status = STATUSES
                    .iter()
                    .map(|s| s.to_string())
                    .chain(std::iter::once("other".to_string()))
                    .map(|status| {
                        registry.counter_with(
                            "mpmb_requests_total",
                            "Requests handled, by endpoint and status.",
                            &[("endpoint", name), ("status", &status)],
                        )
                    })
                    .collect();
                EndpointHandles {
                    by_status,
                    latency: registry.histogram_with(
                        "mpmb_request_duration_seconds",
                        "Request latency, by endpoint.",
                        BUCKETS,
                        &[("endpoint", name)],
                    ),
                }
            })
            .collect();
        let metrics = Metrics {
            cache_hits: registry.counter("mpmb_cache_hits_total", "Result-cache hits."),
            cache_misses: registry.counter("mpmb_cache_misses_total", "Result-cache misses."),
            cache_refined: registry.counter(
                "mpmb_cache_refined_total",
                "Requests that resumed a cached partial result instead of restarting.",
            ),
            trials_executed: registry.counter(
                "mpmb_trials_executed_total",
                "Monte-Carlo trials executed by solvers (including partial runs).",
            ),
            load_shed: registry.counter(
                "mpmb_load_shed_total",
                "Requests rejected with 429 because the accept queue was full.",
            ),
            deadline_exceeded: registry.counter(
                "mpmb_deadline_exceeded_total",
                "Requests that exceeded their deadline and returned 503.",
            ),
            inflight: registry.gauge(
                "mpmb_inflight_requests",
                "Requests currently being processed.",
            ),
            connections: registry.counter("mpmb_connections_total", "Connections accepted."),
            checkpoint_written: registry.counter(
                "mpmb_checkpoint_written_total",
                "Snapshots durably written to the checkpoint directory.",
            ),
            checkpoint_restored: registry.counter(
                "mpmb_checkpoint_restored_total",
                "Partial results restored from a snapshot at startup.",
            ),
            checkpoint_corrupt: registry.counter(
                "mpmb_checkpoint_corrupt_total",
                "Snapshots skipped at startup because they failed verification.",
            ),
            worker_panics: registry.counter(
                "mpmb_worker_panics_total",
                "Worker panics caught at the connection boundary.",
            ),
            faults_injected: registry.counter(
                "mpmb_faults_injected_total",
                "Faults injected by the active fault plan.",
            ),
            cluster_workers: registry.gauge(
                "mpmb_cluster_workers",
                "Cluster members configured on this coordinator (0 when not coordinating).",
            ),
            cluster_ranges_dispatched: registry.counter(
                "mpmb_cluster_ranges_dispatched_total",
                "Trial ranges dispatched to cluster workers.",
            ),
            cluster_redispatch: registry.counter(
                "mpmb_cluster_redispatch_total",
                "Ranges re-dispatched after a worker failure or incomplete range response.",
            ),
            cluster_worker_errors: registry.counter(
                "mpmb_cluster_worker_errors_total",
                "Worker range calls that failed at the transport or decode layer.",
            ),
            cluster_probe_failures: registry.counter(
                "mpmb_cluster_probe_failures_total",
                "Health probes that failed, marking the probed worker down.",
            ),
            graph_evictions: registry.counter(
                "mpmb_graph_evictions_total",
                "Container-backed graphs evicted from residency by the memory budget.",
            ),
            graph_materializations: registry.counter(
                "mpmb_graph_materializations_total",
                "Container materializations (first use and post-eviction reloads).",
            ),
            federation_scrapes: registry.counter(
                "mpmb_federation_scrapes_total",
                "Worker /metrics scrapes attempted by GET /metrics/cluster.",
            ),
            federation_scrape_failures: registry.counter(
                "mpmb_federation_scrape_failures_total",
                "Federation scrapes that failed (worker unreachable or non-200).",
            ),
            fast_requests: registry.counter(
                "mpmb_fast_requests_total",
                "Completed method=fast answers served from the sublinear tier.",
            ),
            fast_escalations: registry.counter(
                "mpmb_fast_escalations_total",
                "Fast answers whose CI exceeded the requested relative error, seeding an exact-tier escalation.",
            ),
            fast_relative_error: registry.histogram(
                "mpmb_fast_relative_error",
                "Certified relative error (half-width / estimate) of completed fast answers.",
                &[0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0],
            ),
            budget_spent: BUDGET_BUCKETS
                .iter()
                .map(|bucket| {
                    registry.histogram_with(
                        "mpmb_deadline_spent_seconds",
                        "Wall time attributed to each deadline-budget bucket, per solve-like request.",
                        BUCKETS,
                        &[("bucket", bucket)],
                    )
                })
                .collect(),
            endpoints,
            registry,
        };
        metrics.registry.counter_fn(
            "mpmb_trace_rotations_total",
            "Trace-file rotations performed by the size-capped sink.",
            obs::trace_rotations,
        );
        metrics.registry.gauge_fn(
            "mpmb_peak_rss_bytes",
            "Peak bytes allocated through the counting allocator (0 when the allocator is not installed).",
            || memtrack::peak_bytes() as i64,
        );
        metrics
    }
}

impl Metrics {
    /// The registry behind these metrics — shared with
    /// [`obs::SolverMetrics`] so solver-phase histograms render on the
    /// same `/metrics` page.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Observes one request's deadline-budget attribution, values in
    /// [`BUDGET_BUCKETS`] order.
    pub fn observe_budget(&self, values: [f64; 6]) {
        for (hist, secs) in self.budget_spent.iter().zip(values) {
            hist.observe(secs);
        }
    }

    /// Records one finished request.
    pub fn record(&self, endpoint: usize, status: u16, elapsed: Duration) {
        let em = &self.endpoints[endpoint];
        let sidx = STATUSES
            .iter()
            .position(|&s| s == status)
            .unwrap_or(STATUSES.len());
        em.by_status[sidx].inc();
        em.latency.observe(elapsed.as_secs_f64());
    }

    /// Sum of request counters for one endpoint name (test convenience).
    pub fn requests_for(&self, endpoint: &str) -> u64 {
        let idx = ENDPOINTS.iter().position(|&e| e == endpoint).unwrap();
        self.endpoints[idx].by_status.iter().map(|c| c.get()).sum()
    }

    /// Renders the Prometheus text exposition.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_complete() {
        let m = Metrics::default();
        let ei = endpoint_index("/v1/solve");
        m.record(ei, 200, Duration::from_millis(3));
        m.record(ei, 200, Duration::from_millis(30));
        m.record(ei, 503, Duration::from_secs(20)); // +Inf tail
        let text = m.render();
        assert!(text.contains("mpmb_requests_total{endpoint=\"solve\",status=\"200\"} 2"));
        assert!(text.contains("mpmb_requests_total{endpoint=\"solve\",status=\"503\"} 1"));
        assert!(
            text.contains("mpmb_request_duration_seconds_bucket{endpoint=\"solve\",le=\"+Inf\"} 3")
        );
        assert!(text.contains("mpmb_request_duration_seconds_count{endpoint=\"solve\"} 3"));
        // le="0.005" must include the 3 ms observation.
        assert!(text
            .contains("mpmb_request_duration_seconds_bucket{endpoint=\"solve\",le=\"0.005\"} 1"));
    }

    #[test]
    fn endpoint_index_covers_all_paths() {
        assert_eq!(ENDPOINTS[endpoint_index("/v1/solve")], "solve");
        assert_eq!(ENDPOINTS[endpoint_index("/admin/shutdown")], "admin");
        assert_eq!(ENDPOINTS[endpoint_index("/debug/trace")], "debug");
        assert_eq!(ENDPOINTS[endpoint_index("/nope")], "other");
    }

    #[test]
    fn requests_for_sums_statuses() {
        let m = Metrics::default();
        let ei = endpoint_index("/v1/count");
        m.record(ei, 200, Duration::from_millis(1));
        m.record(ei, 418, Duration::from_millis(1)); // folds into `other`
        assert_eq!(m.requests_for("count"), 2);
        assert!(m
            .render()
            .contains("endpoint=\"count\",status=\"other\"} 1"));
    }

    #[test]
    fn unlabeled_counters_render_name_space_value() {
        let m = Metrics::default();
        m.cache_hits.inc();
        m.trials_executed.add(300);
        m.inflight.add(2);
        let text = m.render();
        assert!(text.contains("\nmpmb_cache_hits_total 1\n"));
        assert!(text.contains("\nmpmb_trials_executed_total 300\n"));
        assert!(text.contains("\nmpmb_inflight_requests 2\n"));
        assert!(text.contains("\nmpmb_peak_rss_bytes "));
    }

    #[test]
    fn solver_phase_families_share_the_page() {
        let m = Metrics::default();
        let solver = obs::SolverMetrics::new(m.registry().clone());
        solver.record_phase("os.sample", 0.002, 128);
        let text = m.render();
        assert!(text.contains("mpmb_solver_phase_seconds_count{phase=\"os.sample\"} 1"));
        assert!(text.contains("mpmb_solver_phase_trials_total{phase=\"os.sample\"} 128"));
        assert!(text.contains("mpmb_engine_resumes_total 0"));
    }
}
