//! A minimal blocking HTTP/1.1 client — enough for the load generator
//! and the integration tests to talk to the daemon without external
//! dependencies. One request per connection (`Connection: close`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A full response: status, headers (names lowercased), body.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// Issues one request and returns `(status, body)`.
pub fn call(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let (status, _headers, body) = call_ext(addr, method, path, body, &[])?;
    Ok((status, body))
}

/// Issues one request with extra request headers and returns
/// `(status, response headers, body)`. Response header names come back
/// lowercased.
pub fn call_ext(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<FullResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: mpmb\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response_ext(stream)
}

/// Reads one `(status, body)` response from a stream.
pub fn read_response(stream: TcpStream) -> std::io::Result<(u16, String)> {
    let (status, _headers, body) = read_response_ext(stream)?;
    Ok((status, body))
}

/// Reads one `(status, headers, body)` response from a stream. Header
/// names are lowercased.
pub fn read_response_ext(stream: TcpStream) -> std::io::Result<FullResponse> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line `{}`", line.trim_end()),
            )
        })?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|b| (status, headers, b))
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))
}
