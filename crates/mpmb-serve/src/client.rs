//! A minimal blocking HTTP/1.1 client — enough for the load generator
//! and the integration tests to talk to the daemon without external
//! dependencies. One request per connection (`Connection: close`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Issues one request and returns `(status, body)`.
pub fn call(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: mpmb\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(stream)
}

/// Reads one `(status, body)` response from a stream.
pub fn read_response(stream: TcpStream) -> std::io::Result<(u16, String)> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line `{}`", line.trim_end()),
            )
        })?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))
}
