//! A minimal blocking HTTP/1.1 client — enough for the load generator,
//! the cluster coordinator, and the integration tests to talk to the
//! daemon without external dependencies. One request per connection
//! (`Connection: close`).
//!
//! [`call_retry`] adds bounded resilience on top: transport errors
//! (connection reset, truncated response) and retryable statuses
//! (429 load shed, 503 deadline) are retried with exponential backoff
//! and deterministic jitter, honoring the server's `Retry-After`
//! header. Everything else — 200s, 4xx contract errors, 500s — returns
//! on the first attempt.
//!
//! Failures surface as [`ClientError`], which keeps the HTTP status as
//! structured data: retry policies and the cluster's re-dispatch logic
//! branch on [`ClientError::status`] instead of string-matching error
//! messages.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A full response: status, headers (names lowercased), UTF-8 body.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// A full response with the body left as raw bytes (codec frames).
pub type RawResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// Why a client call failed, with the HTTP status (when the server
/// answered at all) as structured data rather than message text.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed before a complete response was read:
    /// connect refused, connection reset, timeout, truncated body.
    /// The peer may or may not have processed the request.
    Transport(std::io::Error),
    /// The server answered with a non-success status. The peer
    /// definitely processed (and rejected or shed) the request.
    Status {
        /// The HTTP status code of the final response.
        status: u16,
        /// The response body (lossily decoded if not UTF-8).
        body: String,
    },
}

impl ClientError {
    /// The HTTP status, if the server answered at all.
    pub fn status(&self) -> Option<u16> {
        match self {
            ClientError::Transport(_) => None,
            ClientError::Status { status, .. } => Some(*status),
        }
    }

    /// Whether this is a transport-level failure (no HTTP response).
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Transport(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport error: {e}"),
            ClientError::Status { status, body } => write!(f, "HTTP {status}: {body}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Transport(e) => Some(e),
            ClientError::Status { .. } => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Transport(e)
    }
}

/// Issues one request and returns `(status, body)`.
pub fn call(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let (status, _headers, body) = call_ext(addr, method, path, body, &[])?;
    Ok((status, body))
}

/// Issues one request with extra request headers and returns
/// `(status, response headers, body)`. Response header names come back
/// lowercased.
pub fn call_ext(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<FullResponse> {
    let (status, headers, raw) = call_raw(
        addr,
        method,
        path,
        body.as_bytes(),
        "application/json",
        extra_headers,
    )?;
    String::from_utf8(raw)
        .map(|b| (status, headers, b))
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))
}

/// Issues one request with an arbitrary byte body and returns the raw
/// response bytes — the transport under every other `call_*`, and the
/// one the cluster protocol uses directly for codec-framed payloads.
pub fn call_raw(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &[u8],
    content_type: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<RawResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: mpmb\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response_raw(stream)
}

/// Bounded-retry policy: exponential backoff with deterministic
/// jitter. Jitter waits are a pure function of `(seed, salt, attempt)`,
/// so a test run replays the same schedule every time.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Base backoff in milliseconds; attempt `k` waits about
    /// `base * 2^k`, jittered down to half.
    pub base_ms: u64,
    /// Upper bound on one backoff wait, and on an honored
    /// `Retry-After`.
    pub cap_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_ms: 25,
            cap_ms: 1_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The jittered wait before retry number `attempt` (0-based), in
    /// milliseconds: uniform over `[target/2, target]` where `target`
    /// is the capped exponential step. `salt` decorrelates concurrent
    /// callers sharing one seed.
    pub fn backoff_ms(&self, attempt: u32, salt: u64) -> u64 {
        let step = self
            .base_ms
            .max(1)
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.cap_ms.max(1));
        let r =
            crate::fault::splitmix64(self.seed ^ salt.rotate_left(17) ^ ((attempt as u64) << 32));
        let low = step / 2;
        low + r % (step - low + 1)
    }

    /// The wait this policy honors for a server's `Retry-After` header
    /// value (whole seconds, per RFC 9110's delay-seconds form), in
    /// milliseconds. `None` when the value is not a plain non-negative
    /// integer (HTTP-date forms fall back to the computed backoff).
    ///
    /// The honored wait is **clamped to `cap_ms`**: a buggy or hostile
    /// upstream answering `Retry-After: 86400` must not stall the
    /// coordinator's redispatch loop or a loadgen worker for a day —
    /// the server's hint can shorten or zero the wait (`Retry-After: 0`
    /// means "retry immediately") but never extend it past the
    /// policy's own cap.
    pub fn honored_retry_after_ms(&self, header_value: &str) -> Option<u64> {
        let secs = header_value.trim().parse::<u64>().ok()?;
        Some(secs.saturating_mul(1_000).min(self.cap_ms))
    }
}

/// Outcome of a [`call_retry`]: the final response plus how many
/// retries it took to get it.
#[derive(Debug)]
pub struct Retried {
    /// Final HTTP status.
    pub status: u16,
    /// Final response headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Final response body.
    pub body: String,
    /// Retries consumed (0 = first attempt answered).
    pub retries: u32,
}

/// Whether a status is worth retrying: load shed and deadline
/// responses are transient by design; everything else is a final
/// answer.
fn retryable(status: u16) -> bool {
    matches!(status, 429 | 503)
}

/// Issues a request under `policy`, retrying transport errors and
/// retryable statuses. A `Retry-After` header on a retryable response
/// overrides the computed backoff (clamped to `cap_ms`) — in
/// particular `Retry-After: 0` on a 503 means the server cached a
/// resumable partial and an immediate retry refines it.
///
/// Any final response — including 4xx/5xx — returns `Ok`; only
/// exhausting every attempt on transport errors returns
/// [`ClientError::Transport`].
pub fn call_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    policy: &RetryPolicy,
) -> Result<Retried, ClientError> {
    call_retry_ext(addr, method, path, body, &[], policy)
}

/// [`call_retry`] with extra request headers — e.g. a client-supplied
/// `X-Request-Id` the server echoes back and traces under. The same
/// headers are re-sent on every retry attempt.
pub fn call_retry_ext(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
    policy: &RetryPolicy,
) -> Result<Retried, ClientError> {
    let (status, headers, raw, retries) = call_retry_raw(
        addr,
        method,
        path,
        body.as_bytes(),
        "application/json",
        extra_headers,
        policy,
    )?;
    let body = String::from_utf8(raw).map_err(|_| {
        ClientError::Transport(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "non-UTF-8 body",
        ))
    })?;
    Ok(Retried {
        status,
        headers,
        body,
        retries,
    })
}

/// Response headers as lowercased `(name, value)` pairs.
pub type Headers = Vec<(String, String)>;

/// [`call_retry`] for binary payloads, demanding success: a final
/// non-2xx status becomes [`ClientError::Status`] (carrying the code
/// for the caller's policy decisions) instead of an `Ok` the caller
/// must inspect. Returns `(headers, body bytes, retries)`.
pub fn call_retry_expect(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    content_type: &str,
    policy: &RetryPolicy,
) -> Result<(Headers, Vec<u8>, u32), ClientError> {
    let (status, headers, raw, retries) =
        call_retry_raw(addr, method, path, body, content_type, &[], policy)?;
    if !(200..300).contains(&status) {
        return Err(ClientError::Status {
            status,
            body: String::from_utf8_lossy(&raw).into_owned(),
        });
    }
    Ok((headers, raw, retries))
}

/// The shared retry loop over [`call_raw`].
fn call_retry_raw(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    content_type: &str,
    extra_headers: &[(&str, &str)],
    policy: &RetryPolicy,
) -> Result<(u16, Headers, Vec<u8>, u32), ClientError> {
    let salt = bigraph::fnv1a64(path.as_bytes()) ^ bigraph::fnv1a64(body);
    let attempts = policy.attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        let wait_ms = match call_raw(addr, method, path, body, content_type, extra_headers) {
            Ok((status, headers, raw)) => {
                if !retryable(status) || attempt + 1 == attempts {
                    return Ok((status, headers, raw, attempt));
                }
                headers
                    .iter()
                    .find(|(name, _)| name == "retry-after")
                    .and_then(|(_, v)| policy.honored_retry_after_ms(v))
                    .unwrap_or_else(|| policy.backoff_ms(attempt, salt))
            }
            Err(e) => {
                if attempt + 1 == attempts {
                    return Err(ClientError::Transport(e));
                }
                last_err = Some(e);
                policy.backoff_ms(attempt, salt)
            }
        };
        if wait_ms > 0 {
            std::thread::sleep(Duration::from_millis(wait_ms));
        }
    }
    // Unreachable: the loop always returns on its last attempt.
    Err(ClientError::Transport(last_err.unwrap_or_else(|| {
        std::io::Error::other("no attempts made")
    })))
}

/// Reads one `(status, body)` response from a stream.
pub fn read_response(stream: TcpStream) -> std::io::Result<(u16, String)> {
    let (status, _headers, body) = read_response_ext(stream)?;
    Ok((status, body))
}

/// Reads one `(status, headers, body)` response from a stream. Header
/// names are lowercased; the body must be UTF-8.
pub fn read_response_ext(stream: TcpStream) -> std::io::Result<FullResponse> {
    let (status, headers, raw) = read_response_raw(stream)?;
    String::from_utf8(raw)
        .map(|b| (status, headers, b))
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))
}

/// Reads one response from a stream, body as raw bytes.
pub fn read_response_raw(stream: TcpStream) -> std::io::Result<RawResponse> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line `{}`", line.trim_end()),
            )
        })?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            attempts: 5,
            base_ms: 20,
            cap_ms: 100,
            seed: 9,
        };
        for attempt in 0..5 {
            let a = p.backoff_ms(attempt, 1234);
            assert_eq!(a, p.backoff_ms(attempt, 1234), "same inputs, same wait");
            let step = (20u64 << attempt).min(100);
            assert!(
                (step / 2..=step).contains(&a),
                "attempt {attempt}: wait {a} outside [{}, {step}]",
                step / 2
            );
        }
        // Different salts decorrelate concurrent callers.
        assert_ne!(
            (0..5).map(|k| p.backoff_ms(k, 1)).collect::<Vec<_>>(),
            (0..5).map(|k| p.backoff_ms(k, 2)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn retry_after_is_clamped_to_the_backoff_cap() {
        let p = RetryPolicy {
            attempts: 4,
            base_ms: 25,
            cap_ms: 1_000,
            seed: 0,
        };
        // A day-long Retry-After must be cut down to the cap.
        assert_eq!(p.honored_retry_after_ms("86400"), Some(1_000));
        // Saturating: absurd values cannot overflow into tiny waits.
        assert_eq!(p.honored_retry_after_ms(&u64::MAX.to_string()), Some(1_000));
        // Hints below the cap are honored verbatim (0 = retry now).
        assert_eq!(p.honored_retry_after_ms("0"), Some(0));
        assert_eq!(p.honored_retry_after_ms(" 1 "), Some(1_000));
        // Non-delay-seconds forms fall back to the computed backoff.
        assert_eq!(
            p.honored_retry_after_ms("Wed, 21 Oct 2026 07:28:00 GMT"),
            None
        );
        assert_eq!(p.honored_retry_after_ms("-1"), None);
        assert_eq!(p.honored_retry_after_ms(""), None);
    }

    #[test]
    fn hostile_retry_after_does_not_stall_the_retry_loop() {
        // A server that sheds with `Retry-After: 86400` and then answers.
        // Without the clamp, call_retry would sleep a day; with it, the
        // whole exchange completes within the test timeout.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for i in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let mut buf = [0u8; 1024];
                let _ = s.read(&mut buf);
                let resp = if i == 0 {
                    "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 86400\r\nContent-Length: 0\r\nConnection: close\r\n\r\n".to_string()
                } else {
                    let body = "ok";
                    format!(
                        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    )
                };
                s.write_all(resp.as_bytes()).unwrap();
            }
        });
        let p = RetryPolicy {
            attempts: 3,
            base_ms: 1,
            cap_ms: 50, // hostile hint clamps to 50ms
            seed: 0,
        };
        let started = std::time::Instant::now();
        let r = call_retry(&addr, "GET", "/healthz", "", &p).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.retries, 1);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "Retry-After was honored past the cap: {:?}",
            started.elapsed()
        );
        server.join().unwrap();
    }

    #[test]
    fn only_shed_and_deadline_are_retryable() {
        assert!(retryable(429) && retryable(503));
        for s in [200, 202, 400, 404, 431, 500, 505] {
            assert!(!retryable(s), "{s} must be terminal");
        }
    }

    #[test]
    fn retry_gives_up_when_nothing_listens() {
        // Reserve a port, then close it so connects fail fast.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let p = RetryPolicy {
            attempts: 3,
            base_ms: 1,
            cap_ms: 2,
            seed: 0,
        };
        let err = call_retry(&addr, "GET", "/healthz", "", &p).unwrap_err();
        assert!(err.is_transport());
        assert_eq!(err.status(), None, "no HTTP response was ever received");
    }

    #[test]
    fn expect_surfaces_status_as_structured_error() {
        // A one-shot server answering 404 with a JSON body.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            let body = "{\"error\":\"no such graph\"}";
            let resp = format!(
                "HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            s.write_all(resp.as_bytes()).unwrap();
        });
        let p = RetryPolicy {
            attempts: 1,
            base_ms: 1,
            cap_ms: 1,
            seed: 0,
        };
        let err = call_retry_expect(&addr, "POST", "/x", b"{}", "application/json", &p)
            .expect_err("404 must be an error");
        assert_eq!(err.status(), Some(404));
        assert!(!err.is_transport());
        match err {
            ClientError::Status { status, body } => {
                assert_eq!(status, 404);
                assert!(body.contains("no such graph"));
            }
            other => panic!("expected Status, got {other:?}"),
        }
        server.join().unwrap();
    }
}
