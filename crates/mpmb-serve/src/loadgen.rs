//! `mpmb loadgen`: a closed-loop load generator against a running
//! daemon. Each of `concurrency` client threads issues its share of
//! `requests` solve calls back-to-back and records per-request latency
//! and status; the merged report prints like the repo's bench tables.

use crate::client;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Latency histogram bucket upper bounds in milliseconds, reused for
/// every run's [`obs::Histogram`].
const LATENCY_BUCKETS_MS: &[f64] = &[
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0,
    5_000.0, 10_000.0,
];

/// Load-generator parameters, mapped 1:1 onto `mpmb loadgen` flags.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:7700`.
    pub target: String,
    /// Total requests to issue.
    pub requests: u64,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Registered graph name to query.
    pub graph: String,
    /// Solver method (`os`, `mcvp`, `ols`, `ols-kl`).
    pub method: String,
    /// Trials per request.
    pub trials: u64,
    /// Base seed.
    pub seed: u64,
    /// When true, request `i` uses `seed + i` — every request misses the
    /// result cache. When false all requests share one key, so all but
    /// the first hit the cache.
    pub vary_seed: bool,
    /// Retries per request on transport errors / 429 / 503 (0 = one
    /// attempt, no retry). Backoff is exponential with deterministic
    /// jitter, honoring `Retry-After`.
    pub retries: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            target: "127.0.0.1:7700".to_string(),
            requests: 100,
            concurrency: 4,
            graph: "default".to_string(),
            method: "os".to_string(),
            trials: 2_000,
            seed: 0x5EED,
            vary_seed: true,
            retries: 0,
        }
    }
}

/// Merged outcome of a load-generation run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests issued.
    pub sent: u64,
    /// 200 responses.
    pub ok: u64,
    /// 429 responses (load shed).
    pub shed: u64,
    /// 503 responses (deadline exceeded).
    pub deadline: u64,
    /// Any other status or transport failure (after retries, if any).
    pub failed: u64,
    /// Retries consumed across all requests.
    pub retried: u64,
    /// Sorted per-request latencies in milliseconds (successful
    /// transport only).
    pub latencies_ms: Vec<f64>,
    /// The same latencies in an [`obs::Histogram`] (ms buckets), filled
    /// concurrently by the client threads; the summary's p50/p95/p99
    /// come from here.
    pub latency_hist: Arc<obs::Histogram>,
    /// Wall-clock duration of the whole run in seconds.
    pub elapsed_s: f64,
}

impl LoadReport {
    /// Latency at quantile `q ∈ [0,1]` (nearest-rank), or 0 if empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies_ms.len() as f64 - 1.0) * q).round() as usize;
        self.latencies_ms[idx.min(self.latencies_ms.len() - 1)]
    }

    /// Achieved request throughput.
    pub fn rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.sent as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Renders the human-readable summary the CLI prints. The p50/p95/
    /// p99 come from the histogram (bucket-interpolated, like a
    /// Prometheus `histogram_quantile`); max is exact.
    pub fn render(&self) -> String {
        format!(
            "requests {}  ok {}  shed(429) {}  deadline(503) {}  failed {}  retried {}\n\
             latency ms: p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}\n\
             elapsed {:.2}s  throughput {:.1} req/s",
            self.sent,
            self.ok,
            self.shed,
            self.deadline,
            self.failed,
            self.retried,
            self.latency_hist.quantile(0.50),
            self.latency_hist.quantile(0.95),
            self.latency_hist.quantile(0.99),
            self.quantile_ms(1.0),
            self.elapsed_s,
            self.rps(),
        )
    }
}

/// Runs the load generation and merges per-thread results.
pub fn run(cfg: &LoadgenConfig) -> LoadReport {
    let next = AtomicU64::new(0);
    let latency_hist = Arc::new(obs::Histogram::new(LATENCY_BUCKETS_MS));
    let started = Instant::now();
    let policy = client::RetryPolicy {
        attempts: cfg.retries.saturating_add(1),
        seed: cfg.seed,
        ..Default::default()
    };
    let results: Vec<(Vec<f64>, u64, u64, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.concurrency.max(1))
            .map(|_| {
                let next = &next;
                let latency_hist = &latency_hist;
                let policy = &policy;
                scope.spawn(move || {
                    let (mut lat, mut ok, mut shed, mut deadline, mut failed, mut retried) =
                        (Vec::new(), 0u64, 0u64, 0u64, 0u64, 0u64);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cfg.requests {
                            break;
                        }
                        let seed = if cfg.vary_seed {
                            cfg.seed + i
                        } else {
                            cfg.seed
                        };
                        let body = format!(
                            "{{\"graph\":\"{}\",\"method\":\"{}\",\"trials\":{},\"seed\":{}}}",
                            cfg.graph, cfg.method, cfg.trials, seed
                        );
                        let t0 = Instant::now();
                        // Latency covers the whole retried exchange:
                        // that is what a caller of a resilient client
                        // experiences.
                        match client::call_retry(&cfg.target, "POST", "/v1/solve", &body, policy) {
                            Ok(outcome) => {
                                let ms = t0.elapsed().as_secs_f64() * 1_000.0;
                                latency_hist.observe(ms);
                                lat.push(ms);
                                retried += outcome.retries as u64;
                                match outcome.status {
                                    200 => ok += 1,
                                    429 => shed += 1,
                                    503 => deadline += 1,
                                    _ => failed += 1,
                                }
                            }
                            Err(_) => {
                                // The transport never recovered within
                                // the attempt budget.
                                retried += cfg.retries as u64;
                                failed += 1;
                            }
                        }
                    }
                    (lat, ok, shed, deadline, failed, retried)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    let mut report = LoadReport {
        sent: cfg.requests,
        ok: 0,
        shed: 0,
        deadline: 0,
        failed: 0,
        retried: 0,
        latencies_ms: Vec::new(),
        latency_hist,
        elapsed_s,
    };
    for (lat, ok, shed, deadline, failed, retried) in results {
        report.latencies_ms.extend(lat);
        report.ok += ok;
        report.shed += shed;
        report.deadline += deadline;
        report.failed += failed;
        report.retried += retried;
    }
    report.latencies_ms.sort_unstable_by(|a, b| a.total_cmp(b));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(latencies_ms: Vec<f64>, elapsed_s: f64) -> LoadReport {
        let hist = Arc::new(obs::Histogram::new(LATENCY_BUCKETS_MS));
        for &ms in &latencies_ms {
            hist.observe(ms);
        }
        LoadReport {
            sent: latencies_ms.len() as u64,
            ok: latencies_ms.len() as u64,
            shed: 0,
            deadline: 0,
            failed: 0,
            retried: 0,
            latencies_ms,
            latency_hist: hist,
            elapsed_s,
        }
    }

    #[test]
    fn quantiles_and_rps() {
        let r = report_with(vec![1.0, 2.0, 3.0, 4.0], 2.0);
        assert_eq!(r.quantile_ms(0.0), 1.0);
        assert_eq!(r.quantile_ms(1.0), 4.0);
        assert_eq!(r.rps(), 2.0);
        let rendered = r.render();
        assert!(rendered.contains("throughput 2.0 req/s"));
        assert!(rendered.contains("p99"));
    }

    #[test]
    fn histogram_quantiles_track_the_sample() {
        let r = report_with((1..=100).map(|i| i as f64).collect(), 1.0);
        // Bucket-interpolated quantiles land inside the right bucket:
        // p50 of 1..=100 ms is within the (25, 50] bucket.
        let p50 = r.latency_hist.quantile(0.50);
        assert!((25.0..=50.0).contains(&p50), "p50 {p50}");
        let p99 = r.latency_hist.quantile(0.99);
        assert!((50.0..=100.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn empty_report_is_safe() {
        let r = report_with(vec![], 0.0);
        assert_eq!(r.quantile_ms(0.5), 0.0);
        assert_eq!(r.latency_hist.quantile(0.5), 0.0);
        assert_eq!(r.rps(), 0.0);
    }
}
