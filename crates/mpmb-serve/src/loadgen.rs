//! `mpmb loadgen`: a closed-loop load generator against a running
//! daemon (or a whole cluster). Each of `concurrency` client threads
//! issues its share of `requests` solve calls back-to-back and records
//! per-request latency and status; the merged report prints like the
//! repo's bench tables.
//!
//! Multiple `--target` addresses round-robin: request `i` goes to
//! `targets[i % targets.len()]`, and the report breaks sent/ok/shed/
//! deadline/failed down per target so a skewed cluster member stands
//! out immediately.
//!
//! Every request carries a deterministic `X-Request-Id` derived from
//! the loadgen seed and the request ordinal, so a rerun with the same
//! flags sends the same ids. The server traces each request under the
//! supplied id, and the report names the ids of the slowest (p99-tail)
//! requests — paste one into `GET /debug/trace` or grep the server's
//! trace file to see exactly where that request's time went.

use crate::client;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Latency histogram bucket upper bounds in milliseconds, reused for
/// every run's [`obs::Histogram`].
const LATENCY_BUCKETS_MS: &[f64] = &[
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0,
    5_000.0, 10_000.0,
];

/// Load-generator parameters, mapped 1:1 onto `mpmb loadgen` flags.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Daemon addresses, e.g. `127.0.0.1:7700`. Request `i` targets
    /// `targets[i % targets.len()]` (round-robin).
    pub targets: Vec<String>,
    /// Total requests to issue.
    pub requests: u64,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Registered graph names to query. Request `i` targets
    /// `graphs[i % graphs.len()]` — more than one name makes requests
    /// alternate between graphs, which under a server `--mem-budget`
    /// too small for all of them exercises eviction churn.
    pub graphs: Vec<String>,
    /// Solver method (`os`, `mcvp`, `ols`, `ols-kl`).
    pub method: String,
    /// Trials per request.
    pub trials: u64,
    /// Base seed.
    pub seed: u64,
    /// When true, request `i` uses `seed + i` — every request misses the
    /// result cache. When false all requests share one key, so all but
    /// the first hit the cache.
    pub vary_seed: bool,
    /// Retries per request on transport errors / 429 / 503 (0 = one
    /// attempt, no retry). Backoff is exponential with deterministic
    /// jitter, honoring `Retry-After`.
    pub retries: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            targets: vec!["127.0.0.1:7700".to_string()],
            requests: 100,
            concurrency: 4,
            graphs: vec!["default".to_string()],
            method: "os".to_string(),
            trials: 2_000,
            seed: 0x5EED,
            vary_seed: true,
            retries: 0,
        }
    }
}

/// Per-target slice of a load-generation run.
#[derive(Clone, Debug, Default)]
pub struct TargetReport {
    /// The target address.
    pub target: String,
    /// Requests routed to this target.
    pub sent: u64,
    /// 200 responses.
    pub ok: u64,
    /// 429 responses (load shed).
    pub shed: u64,
    /// 503 responses (deadline exceeded).
    pub deadline: u64,
    /// Any other status or transport failure (after retries, if any).
    pub failed: u64,
    /// Sorted latencies of this target's 200 responses, in ms.
    pub ok_latencies_ms: Vec<f64>,
}

impl TargetReport {
    /// Mean latency over this target's successful responses, or `None`
    /// when there were none — callers must not divide by the success
    /// count themselves (a dead target would yield `0/0 = NaN`).
    pub fn mean_ok_ms(&self) -> Option<f64> {
        if self.ok_latencies_ms.is_empty() {
            return None;
        }
        Some(self.ok_latencies_ms.iter().sum::<f64>() / self.ok_latencies_ms.len() as f64)
    }

    /// Nearest-rank latency quantile over successful responses, or
    /// `None` when there were none (instead of a garbage percentile).
    pub fn quantile_ok_ms(&self, q: f64) -> Option<f64> {
        if self.ok_latencies_ms.is_empty() {
            return None;
        }
        let idx = ((self.ok_latencies_ms.len() as f64 - 1.0) * q).round() as usize;
        Some(self.ok_latencies_ms[idx.min(self.ok_latencies_ms.len() - 1)])
    }

    /// The latency cell of this target's report row: `mean/p50/p99` over
    /// its successes, the explicit marker `failed` when **every** request
    /// to the target failed (e.g. a dead address in a multi-target run),
    /// or `-` when there were no successes to summarize (all shed /
    /// deadline). Never NaN, never a quantile of an empty sample.
    pub fn latency_cell(&self) -> String {
        match (
            self.mean_ok_ms(),
            self.quantile_ok_ms(0.50),
            self.quantile_ok_ms(0.99),
        ) {
            (Some(mean), Some(p50), Some(p99)) => format!("{mean:.2}/{p50:.2}/{p99:.2}"),
            _ if self.sent > 0 && self.failed == self.sent => "failed".to_string(),
            _ => "-".to_string(),
        }
    }
}

/// Merged outcome of a load-generation run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests issued.
    pub sent: u64,
    /// 200 responses.
    pub ok: u64,
    /// 429 responses (load shed).
    pub shed: u64,
    /// 503 responses (deadline exceeded).
    pub deadline: u64,
    /// Any other status or transport failure (after retries, if any).
    pub failed: u64,
    /// Retries consumed across all requests.
    pub retried: u64,
    /// Per-target breakdown, in `targets` order.
    pub per_target: Vec<TargetReport>,
    /// Sorted per-request latencies in milliseconds (successful
    /// transport only).
    pub latencies_ms: Vec<f64>,
    /// The same latencies in an [`obs::Histogram`] (ms buckets), filled
    /// concurrently by the client threads; the summary's p50/p95/p99
    /// come from here.
    pub latency_hist: Arc<obs::Histogram>,
    /// The slowest requests at or above the p99 latency (up to five),
    /// as `(X-Request-Id, ms)` worst-first — the ids to look up in the
    /// server's `/debug/trace` ring or trace file.
    pub slowest: Vec<(String, f64)>,
    /// Wall-clock duration of the whole run in seconds.
    pub elapsed_s: f64,
}

impl LoadReport {
    /// Latency at quantile `q ∈ [0,1]` (nearest-rank), or 0 if empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies_ms.len() as f64 - 1.0) * q).round() as usize;
        self.latencies_ms[idx.min(self.latencies_ms.len() - 1)]
    }

    /// Achieved request throughput.
    pub fn rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.sent as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Renders the human-readable summary the CLI prints. The p50/p95/
    /// p99 come from the histogram (bucket-interpolated, like a
    /// Prometheus `histogram_quantile`); max is exact. With more than
    /// one target a per-target table follows the totals.
    pub fn render(&self) -> String {
        let mut out = format!(
            "requests {}  ok {}  shed(429) {}  deadline(503) {}  failed {}  retried {}\n\
             latency ms: p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}\n\
             elapsed {:.2}s  throughput {:.1} req/s",
            self.sent,
            self.ok,
            self.shed,
            self.deadline,
            self.failed,
            self.retried,
            self.latency_hist.quantile(0.50),
            self.latency_hist.quantile(0.95),
            self.latency_hist.quantile(0.99),
            self.quantile_ms(1.0),
            self.elapsed_s,
            self.rps(),
        );
        if !self.slowest.is_empty() {
            out.push_str("\np99-worst requests:");
            for (id, ms) in &self.slowest {
                out.push_str(&format!("  {id} ({ms:.2}ms)"));
            }
        }
        if self.per_target.len() > 1 {
            let width = self
                .per_target
                .iter()
                .map(|t| t.target.len())
                .max()
                .unwrap_or(6)
                .max("target".len());
            out.push_str(&format!(
                "\n{:width$}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}  {:>20}",
                "target", "sent", "ok", "shed", "503", "failed", "ms mean/p50/p99"
            ));
            for t in &self.per_target {
                out.push_str(&format!(
                    "\n{:width$}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}  {:>20}",
                    t.target,
                    t.sent,
                    t.ok,
                    t.shed,
                    t.deadline,
                    t.failed,
                    t.latency_cell()
                ));
            }
        }
        out
    }
}

/// The deterministic `X-Request-Id` of request `i` under `seed`: a
/// pure function of both, so reruns with the same flags re-send the
/// same ids and the ordinal stays readable in the id itself.
pub fn request_id(seed: u64, i: u64) -> String {
    let tag = crate::fault::splitmix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    format!("lg-{tag:016x}-{i}")
}

/// One thread's tallies: latencies, total retries, per-target
/// `[sent, ok, shed, deadline, failed]` rows, per-target latencies of
/// 200 responses, and `(ms, request id)` pairs for tail attribution.
type ThreadTally = (
    Vec<f64>,
    u64,
    Vec<[u64; 5]>,
    Vec<Vec<f64>>,
    Vec<(f64, String)>,
);

/// Runs the load generation and merges per-thread results.
pub fn run(cfg: &LoadgenConfig) -> LoadReport {
    assert!(!cfg.targets.is_empty(), "loadgen needs at least one target");
    assert!(!cfg.graphs.is_empty(), "loadgen needs at least one graph");
    let next = AtomicU64::new(0);
    let latency_hist = Arc::new(obs::Histogram::new(LATENCY_BUCKETS_MS));
    let started = Instant::now();
    let policy = client::RetryPolicy {
        attempts: cfg.retries.saturating_add(1),
        seed: cfg.seed,
        ..Default::default()
    };
    let results: Vec<ThreadTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.concurrency.max(1))
            .map(|_| {
                let next = &next;
                let latency_hist = &latency_hist;
                let policy = &policy;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut retried = 0u64;
                    let mut by_target = vec![[0u64; 5]; cfg.targets.len()];
                    let mut ok_lat = vec![Vec::new(); cfg.targets.len()];
                    let mut tagged = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cfg.requests {
                            break;
                        }
                        let ti = (i % cfg.targets.len() as u64) as usize;
                        let target = &cfg.targets[ti];
                        let seed = if cfg.vary_seed {
                            cfg.seed + i
                        } else {
                            cfg.seed
                        };
                        let graph = &cfg.graphs[(i % cfg.graphs.len() as u64) as usize];
                        let body = format!(
                            "{{\"graph\":\"{graph}\",\"method\":\"{}\",\"trials\":{},\"seed\":{}}}",
                            cfg.method, cfg.trials, seed
                        );
                        by_target[ti][0] += 1;
                        let rid = request_id(cfg.seed, i);
                        let t0 = Instant::now();
                        // Latency covers the whole retried exchange:
                        // that is what a caller of a resilient client
                        // experiences.
                        match client::call_retry_ext(
                            target,
                            "POST",
                            "/v1/solve",
                            &body,
                            &[("X-Request-Id", &rid)],
                            policy,
                        ) {
                            Ok(outcome) => {
                                let ms = t0.elapsed().as_secs_f64() * 1_000.0;
                                latency_hist.observe(ms);
                                lat.push(ms);
                                tagged.push((ms, rid));
                                retried += outcome.retries as u64;
                                match outcome.status {
                                    200 => {
                                        by_target[ti][1] += 1;
                                        ok_lat[ti].push(ms);
                                    }
                                    429 => by_target[ti][2] += 1,
                                    503 => by_target[ti][3] += 1,
                                    _ => by_target[ti][4] += 1,
                                }
                            }
                            Err(_) => {
                                // The transport never recovered within
                                // the attempt budget.
                                retried += cfg.retries as u64;
                                by_target[ti][4] += 1;
                            }
                        }
                    }
                    (lat, retried, by_target, ok_lat, tagged)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    let mut report = LoadReport {
        sent: cfg.requests,
        ok: 0,
        shed: 0,
        deadline: 0,
        failed: 0,
        retried: 0,
        per_target: cfg
            .targets
            .iter()
            .map(|t| TargetReport {
                target: t.clone(),
                ..TargetReport::default()
            })
            .collect(),
        latencies_ms: Vec::new(),
        latency_hist,
        slowest: Vec::new(),
        elapsed_s,
    };
    let mut tagged_all = Vec::new();
    for (lat, retried, by_target, ok_lat, tagged) in results {
        report.latencies_ms.extend(lat);
        report.retried += retried;
        tagged_all.extend(tagged);
        for (ti, [sent, ok, shed, deadline, failed]) in by_target.into_iter().enumerate() {
            let t = &mut report.per_target[ti];
            t.sent += sent;
            t.ok += ok;
            t.shed += shed;
            t.deadline += deadline;
            t.failed += failed;
        }
        for (ti, ms) in ok_lat.into_iter().enumerate() {
            report.per_target[ti].ok_latencies_ms.extend(ms);
        }
    }
    for t in &report.per_target {
        report.ok += t.ok;
        report.shed += t.shed;
        report.deadline += t.deadline;
        report.failed += t.failed;
    }
    report.latencies_ms.sort_unstable_by(|a, b| a.total_cmp(b));
    for t in &mut report.per_target {
        t.ok_latencies_ms.sort_unstable_by(|a, b| a.total_cmp(b));
    }
    // Tail attribution: the ids of the requests at or above the p99
    // latency, worst first, capped at five.
    let p99 = report.quantile_ms(0.99);
    tagged_all.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
    report.slowest = tagged_all
        .into_iter()
        .filter(|(ms, _)| *ms >= p99)
        .take(5)
        .map(|(ms, id)| (id, ms))
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(latencies_ms: Vec<f64>, elapsed_s: f64) -> LoadReport {
        let hist = Arc::new(obs::Histogram::new(LATENCY_BUCKETS_MS));
        for &ms in &latencies_ms {
            hist.observe(ms);
        }
        LoadReport {
            sent: latencies_ms.len() as u64,
            ok: latencies_ms.len() as u64,
            shed: 0,
            deadline: 0,
            failed: 0,
            retried: 0,
            per_target: vec![TargetReport {
                target: "t".to_string(),
                sent: latencies_ms.len() as u64,
                ok: latencies_ms.len() as u64,
                ..TargetReport::default()
            }],
            latencies_ms,
            latency_hist: hist,
            slowest: Vec::new(),
            elapsed_s,
        }
    }

    #[test]
    fn request_ids_are_deterministic_and_distinct() {
        assert_eq!(request_id(7, 3), request_id(7, 3));
        assert_ne!(request_id(7, 3), request_id(7, 4));
        assert_ne!(request_id(7, 3), request_id(8, 3));
        // The ordinal stays readable for cross-referencing.
        assert!(request_id(7, 3).ends_with("-3"));
        assert!(request_id(7, 3).starts_with("lg-"));
    }

    #[test]
    fn report_names_p99_worst_request_ids() {
        let mut r = report_with(vec![1.0, 2.0, 100.0], 1.0);
        r.slowest = vec![(request_id(1, 2), 100.0)];
        let rendered = r.render();
        assert!(rendered.contains("p99-worst requests:"), "{rendered}");
        assert!(rendered.contains(&request_id(1, 2)), "{rendered}");
        // And an empty tail renders no dangling header.
        r.slowest.clear();
        assert!(!r.render().contains("p99-worst"));
    }

    #[test]
    fn quantiles_and_rps() {
        let r = report_with(vec![1.0, 2.0, 3.0, 4.0], 2.0);
        assert_eq!(r.quantile_ms(0.0), 1.0);
        assert_eq!(r.quantile_ms(1.0), 4.0);
        assert_eq!(r.rps(), 2.0);
        let rendered = r.render();
        assert!(rendered.contains("throughput 2.0 req/s"));
        assert!(rendered.contains("p99"));
        // Single target: no per-target table.
        assert!(!rendered.contains("target"));
    }

    #[test]
    fn histogram_quantiles_track_the_sample() {
        let r = report_with((1..=100).map(|i| i as f64).collect(), 1.0);
        // Bucket-interpolated quantiles land inside the right bucket:
        // p50 of 1..=100 ms is within the (25, 50] bucket.
        let p50 = r.latency_hist.quantile(0.50);
        assert!((25.0..=50.0).contains(&p50), "p50 {p50}");
        let p99 = r.latency_hist.quantile(0.99);
        assert!((50.0..=100.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn empty_report_is_safe() {
        let r = report_with(vec![], 0.0);
        assert_eq!(r.quantile_ms(0.5), 0.0);
        assert_eq!(r.latency_hist.quantile(0.5), 0.0);
        assert_eq!(r.rps(), 0.0);
    }

    #[test]
    fn multi_target_render_has_one_row_per_target() {
        let mut r = report_with(vec![1.0, 2.0], 1.0);
        r.per_target = vec![
            TargetReport {
                target: "127.0.0.1:7700".to_string(),
                sent: 1,
                ok: 1,
                ..TargetReport::default()
            },
            TargetReport {
                target: "127.0.0.1:7701".to_string(),
                sent: 1,
                shed: 1,
                ..TargetReport::default()
            },
        ];
        let rendered = r.render();
        assert!(rendered.contains("target"));
        assert!(rendered.contains("127.0.0.1:7700"));
        assert!(rendered.contains("127.0.0.1:7701"));
    }

    #[test]
    fn latency_cell_reports_stats_failed_or_dash() {
        // Healthy target: mean/p50/p99 of its 200-only latencies.
        let healthy = TargetReport {
            target: "a".to_string(),
            sent: 4,
            ok: 3,
            failed: 1,
            ok_latencies_ms: vec![1.0, 2.0, 3.0],
            ..TargetReport::default()
        };
        assert_eq!(healthy.mean_ok_ms(), Some(2.0));
        assert_eq!(healthy.quantile_ok_ms(0.50), Some(2.0));
        assert_eq!(healthy.latency_cell(), "2.00/2.00/3.00");
        // All requests failed: an explicit marker, never NaN.
        let dead = TargetReport {
            target: "b".to_string(),
            sent: 4,
            failed: 4,
            ..TargetReport::default()
        };
        assert_eq!(dead.mean_ok_ms(), None);
        assert_eq!(dead.latency_cell(), "failed");
        // Never addressed at all: a plain dash.
        let idle = TargetReport {
            target: "c".to_string(),
            ..TargetReport::default()
        };
        assert_eq!(idle.latency_cell(), "-");
    }

    #[test]
    fn all_failed_target_renders_failed_not_nan() {
        // No servers listening: every request to every target fails, and
        // the rendered table must say so explicitly instead of printing
        // NaN (or garbage) percentiles over an empty latency set.
        let dead = || {
            std::net::TcpListener::bind("127.0.0.1:0")
                .unwrap()
                .local_addr()
                .unwrap()
                .to_string()
        };
        let cfg = LoadgenConfig {
            targets: vec![dead(), dead()],
            requests: 6,
            concurrency: 2,
            retries: 0,
            ..LoadgenConfig::default()
        };
        let r = run(&cfg);
        assert_eq!(r.failed, 6);
        for t in &r.per_target {
            assert!(t.ok_latencies_ms.is_empty());
            assert_eq!(t.mean_ok_ms(), None);
            assert_eq!(t.latency_cell(), "failed");
        }
        let rendered = r.render();
        assert!(rendered.contains("failed"), "{rendered}");
        assert!(!rendered.contains("NaN"), "{rendered}");
    }

    #[test]
    fn round_robin_covers_every_target() {
        // No servers listening: every request fails fast, but the
        // per-target sent counters must still round-robin evenly.
        let dead = || {
            std::net::TcpListener::bind("127.0.0.1:0")
                .unwrap()
                .local_addr()
                .unwrap()
                .to_string()
        };
        let cfg = LoadgenConfig {
            targets: vec![dead(), dead(), dead()],
            requests: 9,
            concurrency: 2,
            retries: 0,
            ..LoadgenConfig::default()
        };
        let r = run(&cfg);
        assert_eq!(r.sent, 9);
        assert_eq!(r.failed, 9);
        for t in &r.per_target {
            assert_eq!(t.sent, 3, "round-robin must be even: {t:?}");
            assert_eq!(t.failed, 3);
        }
    }
}
