//! `mpmb loadgen`: a closed-loop load generator against a running
//! daemon. Each of `concurrency` client threads issues its share of
//! `requests` solve calls back-to-back and records per-request latency
//! and status; the merged report prints like the repo's bench tables.

use crate::client;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Load-generator parameters, mapped 1:1 onto `mpmb loadgen` flags.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:7700`.
    pub target: String,
    /// Total requests to issue.
    pub requests: u64,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Registered graph name to query.
    pub graph: String,
    /// Solver method (`os`, `mcvp`, `ols`, `ols-kl`).
    pub method: String,
    /// Trials per request.
    pub trials: u64,
    /// Base seed.
    pub seed: u64,
    /// When true, request `i` uses `seed + i` — every request misses the
    /// result cache. When false all requests share one key, so all but
    /// the first hit the cache.
    pub vary_seed: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            target: "127.0.0.1:7700".to_string(),
            requests: 100,
            concurrency: 4,
            graph: "default".to_string(),
            method: "os".to_string(),
            trials: 2_000,
            seed: 0x5EED,
            vary_seed: true,
        }
    }
}

/// Merged outcome of a load-generation run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests issued.
    pub sent: u64,
    /// 200 responses.
    pub ok: u64,
    /// 429 responses (load shed).
    pub shed: u64,
    /// 503 responses (deadline exceeded).
    pub deadline: u64,
    /// Any other status or transport failure.
    pub failed: u64,
    /// Sorted per-request latencies in milliseconds (successful
    /// transport only).
    pub latencies_ms: Vec<f64>,
    /// Wall-clock duration of the whole run in seconds.
    pub elapsed_s: f64,
}

impl LoadReport {
    /// Latency at quantile `q ∈ [0,1]` (nearest-rank), or 0 if empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies_ms.len() as f64 - 1.0) * q).round() as usize;
        self.latencies_ms[idx.min(self.latencies_ms.len() - 1)]
    }

    /// Achieved request throughput.
    pub fn rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.sent as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Renders the human-readable summary the CLI prints.
    pub fn render(&self) -> String {
        format!(
            "requests {}  ok {}  shed(429) {}  deadline(503) {}  failed {}\n\
             latency ms: p50 {:.2}  p95 {:.2}  max {:.2}\n\
             elapsed {:.2}s  throughput {:.1} req/s",
            self.sent,
            self.ok,
            self.shed,
            self.deadline,
            self.failed,
            self.quantile_ms(0.50),
            self.quantile_ms(0.95),
            self.quantile_ms(1.0),
            self.elapsed_s,
            self.rps(),
        )
    }
}

/// Runs the load generation and merges per-thread results.
pub fn run(cfg: &LoadgenConfig) -> LoadReport {
    let next = AtomicU64::new(0);
    let started = Instant::now();
    let results: Vec<(Vec<f64>, u64, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.concurrency.max(1))
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let (mut lat, mut ok, mut shed, mut deadline, mut failed) =
                        (Vec::new(), 0u64, 0u64, 0u64, 0u64);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cfg.requests {
                            break;
                        }
                        let seed = if cfg.vary_seed {
                            cfg.seed + i
                        } else {
                            cfg.seed
                        };
                        let body = format!(
                            "{{\"graph\":\"{}\",\"method\":\"{}\",\"trials\":{},\"seed\":{}}}",
                            cfg.graph, cfg.method, cfg.trials, seed
                        );
                        let t0 = Instant::now();
                        match client::call(cfg.target.as_str(), "POST", "/v1/solve", &body) {
                            Ok((status, _)) => {
                                lat.push(t0.elapsed().as_secs_f64() * 1_000.0);
                                match status {
                                    200 => ok += 1,
                                    429 => shed += 1,
                                    503 => deadline += 1,
                                    _ => failed += 1,
                                }
                            }
                            Err(_) => failed += 1,
                        }
                    }
                    (lat, ok, shed, deadline, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    let mut report = LoadReport {
        sent: cfg.requests,
        ok: 0,
        shed: 0,
        deadline: 0,
        failed: 0,
        latencies_ms: Vec::new(),
        elapsed_s,
    };
    for (lat, ok, shed, deadline, failed) in results {
        report.latencies_ms.extend(lat);
        report.ok += ok;
        report.shed += shed;
        report.deadline += deadline;
        report.failed += failed;
    }
    report.latencies_ms.sort_unstable_by(|a, b| a.total_cmp(b));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_rps() {
        let r = LoadReport {
            sent: 4,
            ok: 4,
            shed: 0,
            deadline: 0,
            failed: 0,
            latencies_ms: vec![1.0, 2.0, 3.0, 4.0],
            elapsed_s: 2.0,
        };
        assert_eq!(r.quantile_ms(0.0), 1.0);
        assert_eq!(r.quantile_ms(1.0), 4.0);
        assert_eq!(r.rps(), 2.0);
        assert!(r.render().contains("throughput 2.0 req/s"));
    }

    #[test]
    fn empty_report_is_safe() {
        let r = LoadReport {
            sent: 0,
            ok: 0,
            shed: 0,
            deadline: 0,
            failed: 0,
            latencies_ms: vec![],
            elapsed_s: 0.0,
        };
        assert_eq!(r.quantile_ms(0.5), 0.0);
        assert_eq!(r.rps(), 0.0);
    }
}
