//! SIGTERM / SIGINT handling without any FFI crate.
//!
//! The workspace has no `libc` dependency, so the handler is installed
//! through the C library's `signal(2)` directly. The handler body does
//! the only async-signal-safe thing it needs to: store into a static
//! atomic, which the server's accept loop polls.

use std::sync::atomic::{AtomicBool, Ordering};

/// Latched true once SIGTERM or SIGINT is delivered.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// `signal(2)` from the C library the binary already links against.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs the shutdown handler for SIGTERM and SIGINT. Process-global;
/// calling it more than once is harmless.
pub fn install() {
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// Whether a shutdown signal has been delivered.
pub fn requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Clears the latch (tests re-use the process across cases).
pub fn reset() {
    SHUTDOWN_REQUESTED.store(false, Ordering::SeqCst);
}
