//! Minimal JSON tree: parser and writer.
//!
//! Hand-rolled in the workspace's std-only idiom (the same reason
//! `bigraph::fx` hand-rolls FxHash). Numbers are `f64`; `{}`-formatting
//! of `f64` in Rust emits the shortest string that round-trips, so
//! probabilities survive a serve → parse → compare cycle bit-for-bit —
//! the property the serving integration tests assert.

use std::fmt;

/// A JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional parts).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Parses a complete JSON document (trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; null is the conventional spelling.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON syntax error with byte offset.
#[derive(Debug)]
pub struct ParseError {
    /// Byte offset of the error.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("bad scalar"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            // hex4 advanced past the digits; compensate the
                            // unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let s = &self.bytes[self.pos..];
                    let len = match s[0] {
                        b if b < 0x80 => 1,
                        b if b >> 5 == 0b110 => 2,
                        b if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&s[..len]).map_err(|_| self.err("bad utf8"))?);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(s).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let j = Json::parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x\ny"}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[1], Json::Num(2.5));
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(j.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn f64_roundtrips_bit_for_bit() {
        for &x in &[0.1, 1.0 / 3.0, 6.02e23, 5e-324, 0.30000000000000004, 1e308] {
            let rendered = Json::Num(x).to_string();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {rendered}");
        }
    }

    #[test]
    fn string_roundtrip_with_escapes() {
        let original = "quote\" slash\\ tab\t newline\n unicode→ control\u{1}";
        let rendered = Json::Str(original.to_string()).to_string();
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""é😀""#).unwrap().as_str(), Some("é😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
