//! Cancellable solver runners.
//!
//! These mirror the trial loops of [`mpmb_core::parallel`] exactly —
//! same per-trial RNG streams (`trial_rng(seed, t)`), same contiguous
//! trial ranges per worker — so a run that finishes is **bit-identical**
//! to the corresponding `mpmb_core` call. The only addition is a shared
//! cancellation flag checked every [`CHECK_EVERY`] trials: the first
//! worker to observe an expired deadline raises it, every worker stops
//! at its next check, and the partial tallies are still merged so a 503
//! can report how far the estimate got.
//!
//! Cancellation granularity varies by method:
//!
//! * `os`, `mcvp`, optimized OLS phase 2, and `/v1/query` — per trial
//!   block ([`CHECK_EVERY`]).
//! * OLS phase 1 (preparing) — per worker range start, then per trial
//!   block within the range.
//! * Karp-Luby (`ols-kl`) — phase boundary only: once phase 2 starts it
//!   runs to completion, because its per-candidate trial counts are part
//!   of the deterministic result.

use bigraph::{
    trial_rng, LazyEdgeSampler, PossibleWorld, UncertainBipartiteGraph, VertexPriority,
    WorldSampler,
};
use mpmb_core::mcvp::smb_of_world;
use mpmb_core::{
    chunk_ranges, CandidateSet, McVpConfig, OsConfig, OsEngine, SamplingOracle, Tally,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Trials between deadline checks. Small enough that a single block
/// completes quickly even on large graphs; large enough that the
/// `Instant::now` call is amortized away.
pub const CHECK_EVERY: u64 = 64;

/// A cooperative cancellation handle: an optional wall-clock deadline
/// plus a flag that latches once any worker observes it expired.
pub struct Cancel {
    deadline: Option<Instant>,
    raised: AtomicBool,
}

impl Cancel {
    /// A handle that cancels at `deadline` (never, if `None`).
    pub fn at(deadline: Option<Instant>) -> Self {
        Cancel {
            deadline,
            raised: AtomicBool::new(false),
        }
    }

    /// Whether work should stop. Latches: once true, stays true.
    pub fn expired(&self) -> bool {
        if self.raised.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.raised.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// Outcome of a (possibly cancelled) tally-producing run.
pub struct PartialRun {
    /// Merged trial tally — complete, or partial on cancellation.
    pub tally: Tally,
    /// Trials actually executed.
    pub trials_done: u64,
    /// Trials the request asked for.
    pub trials_requested: u64,
}

impl PartialRun {
    /// Whether every requested trial ran.
    pub fn completed(&self) -> bool {
        self.trials_done == self.trials_requested
    }
}

/// Runs per-range worker closures and merges their tallies. Ranges come
/// from [`mpmb_core::chunk_ranges`] — the same split the core parallel
/// runners use, which is what makes completed runs bit-identical.
fn run_chunked<F>(trials: u64, threads: usize, cancel: &Cancel, worker: F) -> PartialRun
where
    F: Fn(std::ops::Range<u64>, &Cancel) -> Tally + Sync,
{
    assert!(trials > 0, "trials must be positive");
    let ranges = chunk_ranges(trials, threads);
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || worker(range, cancel)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("solver worker panicked"))
            .collect()
    });
    let mut total = Tally::new();
    for t in tallies {
        total.merge(t);
    }
    let trials_done = total.trials();
    PartialRun {
        tally: total,
        trials_done,
        trials_requested: trials,
    }
}

/// Cancellable Ordering Sampling; bit-identical to
/// [`mpmb_core::run_os_parallel`] when it completes.
pub fn run_os(
    g: &UncertainBipartiteGraph,
    cfg: &OsConfig,
    threads: usize,
    cancel: &Cancel,
) -> PartialRun {
    run_chunked(cfg.trials, threads, cancel, |range, cancel| {
        let mut engine = OsEngine::new(g, cfg);
        let mut sampler = LazyEdgeSampler::new(g.num_edges());
        let mut tally = Tally::new();
        let mut smb = Vec::new();
        for t in range {
            if t % CHECK_EVERY == 0 && cancel.expired() {
                break;
            }
            let mut rng = trial_rng(cfg.seed, t);
            sampler.begin_trial();
            let mut oracle = SamplingOracle::new(g, &mut sampler, &mut rng);
            engine.trial(&mut oracle, &mut smb);
            tally.record_trial(smb.iter());
        }
        tally
    })
}

/// Cancellable MC-VP; bit-identical to
/// [`mpmb_core::run_mcvp_parallel`] when it completes.
pub fn run_mcvp(
    g: &UncertainBipartiteGraph,
    cfg: &McVpConfig,
    threads: usize,
    cancel: &Cancel,
) -> PartialRun {
    let priority = VertexPriority::from_degrees(g);
    run_chunked(cfg.trials, threads, cancel, |range, cancel| {
        let mut tally = Tally::new();
        let mut world = PossibleWorld::empty(g.num_edges());
        let mut smb = Vec::new();
        for t in range {
            if t % CHECK_EVERY == 0 && cancel.expired() {
                break;
            }
            let mut rng = trial_rng(cfg.seed, t);
            WorldSampler::sample_into(g, &mut world, &mut rng);
            smb_of_world(g, &priority, &world, &mut smb);
            tally.record_trial(smb.iter());
        }
        tally
    })
}

/// Cancellable Algorithm 5 (shared-trial candidate estimation);
/// bit-identical to [`mpmb_core::run_optimized_parallel`] when it
/// completes.
pub fn run_optimized(
    g: &UncertainBipartiteGraph,
    candidates: &CandidateSet,
    trials: u64,
    seed: u64,
    threads: usize,
    cancel: &Cancel,
) -> PartialRun {
    run_chunked(trials, threads, cancel, |range, cancel| {
        let mut sampler = LazyEdgeSampler::new(g.num_edges());
        let mut tally = Tally::new();
        let mut smb: Vec<mpmb_core::Butterfly> = Vec::new();
        for t in range {
            if t % CHECK_EVERY == 0 && cancel.expired() {
                break;
            }
            let mut rng = trial_rng(seed, t);
            sampler.begin_trial();
            smb.clear();
            let mut w_max = f64::NEG_INFINITY;
            for cand in candidates.iter() {
                if cand.weight < w_max {
                    break;
                }
                let exists = cand
                    .edges
                    .iter()
                    .all(|&e| sampler.is_present(g, e, &mut rng));
                if exists {
                    smb.push(cand.butterfly);
                    w_max = cand.weight;
                }
            }
            tally.record_trial(smb.iter());
        }
        tally
    })
}

/// Cancellable OLS preparing phase; bit-identical to
/// [`mpmb_core::OrderingListingSampling::prepare`] when it completes,
/// at every thread count. Returns the candidate set plus how many
/// preparing trials ran.
///
/// Each worker owns a contiguous trial range ([`mpmb_core::chunk_ranges`])
/// and checks the deadline at its range start and then every
/// [`CHECK_EVERY`] trials; partial per-range unions still merge in range
/// order, so a cancelled run reports a usable (if under-sampled)
/// candidate set along with the exact number of trials that ran.
pub fn run_ols_prepare(
    g: &UncertainBipartiteGraph,
    cfg: &mpmb_core::OlsConfig,
    threads: usize,
    cancel: &Cancel,
) -> (CandidateSet, u64) {
    let os_cfg = OsConfig {
        trials: cfg.prep_trials,
        seed: cfg.prep_seed(),
        edge_ordering: cfg.edge_ordering,
        middle_side: cfg.middle_side,
        ..Default::default()
    };
    let worker = |range: std::ops::Range<u64>| -> (Vec<mpmb_core::Butterfly>, u64) {
        let mut engine = OsEngine::new(g, &os_cfg);
        let mut sampler = LazyEdgeSampler::new(g.num_edges());
        let mut smb = Vec::new();
        let mut union: Vec<mpmb_core::Butterfly> = Vec::new();
        let mut done = 0u64;
        for t in range.clone() {
            if (t - range.start).is_multiple_of(CHECK_EVERY) && cancel.expired() {
                break;
            }
            let mut rng = trial_rng(os_cfg.seed, t);
            sampler.begin_trial();
            let mut oracle = SamplingOracle::new(g, &mut sampler, &mut rng);
            engine.trial(&mut oracle, &mut smb);
            union.extend_from_slice(&smb);
            done += 1;
        }
        (union, done)
    };
    let ranges = chunk_ranges(cfg.prep_trials, threads);
    let parts: Vec<(Vec<mpmb_core::Butterfly>, u64)> = if threads.max(1) == 1 {
        ranges.into_iter().map(worker).collect()
    } else {
        std::thread::scope(|scope| {
            let worker = &worker;
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| scope.spawn(move || worker(range)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("prepare worker panicked"))
                .collect()
        })
    };
    let mut union: Vec<mpmb_core::Butterfly> = Vec::new();
    let mut done = 0u64;
    for (part, part_done) in parts {
        union.extend(part);
        done += part_done;
    }
    (CandidateSet::from_butterflies(g, union), done)
}

/// Outcome of a (possibly cancelled) conditioned probability query.
pub struct PartialQuery {
    /// `Pr[E(B)]`, exact.
    pub existence_prob: f64,
    /// Estimated `Pr[B ∈ S_MB | E(B)]` over the trials that ran.
    pub conditional_max_prob: f64,
    /// The product — the estimated `P(B)`.
    pub prob: f64,
    /// Trials actually executed.
    pub trials_done: u64,
    /// Trials requested.
    pub trials_requested: u64,
}

/// Cancellable conditioned query; bit-identical to
/// [`mpmb_core::estimate_prob_of`] when it completes. `None` if `b` is
/// not a backbone butterfly of `g`.
pub fn run_query(
    g: &UncertainBipartiteGraph,
    b: &mpmb_core::Butterfly,
    trials: u64,
    seed: u64,
    cancel: &Cancel,
) -> Option<PartialQuery> {
    assert!(trials > 0, "trials must be positive");
    let edges = b.edges(g)?;
    let existence_prob = b.existence_prob(g)?;
    let w_b = b.weight(g)?;
    let cfg = OsConfig::default();
    let mut engine = OsEngine::new(g, &cfg);
    let mut sampler = LazyEdgeSampler::new(g.num_edges());
    let mut smb = Vec::new();
    let mut hits = 0u64;
    let mut done = 0u64;
    for t in 0..trials {
        if t % CHECK_EVERY == 0 && cancel.expired() {
            break;
        }
        let mut rng = trial_rng(seed, t);
        sampler.begin_trial();
        for &e in &edges {
            sampler.force_present(e);
        }
        let mut oracle = SamplingOracle::new(g, &mut sampler, &mut rng);
        let w_max = engine.trial(&mut oracle, &mut smb);
        if w_max <= w_b {
            hits += 1;
        }
        done = t + 1;
    }
    let conditional = if done == 0 {
        0.0
    } else {
        hits as f64 / done as f64
    };
    Some(PartialQuery {
        existence_prob,
        conditional_max_prob: conditional,
        prob: existence_prob * conditional,
        trials_done: done,
        trials_requested: trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{GraphBuilder, Left, Right};
    use mpmb_core::{OlsConfig, OrderingListingSampling};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    fn no_deadline() -> Cancel {
        Cancel::at(None)
    }

    #[test]
    fn uncancelled_os_matches_core_bitwise() {
        let g = fig1();
        let cfg = OsConfig {
            trials: 1_500,
            seed: 11,
            ..Default::default()
        };
        let core = mpmb_core::run_os_parallel(&g, &cfg, 3);
        let run = run_os(&g, &cfg, 3, &no_deadline());
        assert!(run.completed());
        assert_eq!(core.max_abs_diff(&run.tally.into_distribution()), 0.0);
    }

    #[test]
    fn uncancelled_mcvp_matches_core_bitwise() {
        let g = fig1();
        let cfg = McVpConfig {
            trials: 800,
            seed: 5,
        };
        let core = mpmb_core::run_mcvp_parallel(&g, &cfg, 2);
        let run = run_mcvp(&g, &cfg, 2, &no_deadline());
        assert!(run.completed());
        assert_eq!(core.max_abs_diff(&run.tally.into_distribution()), 0.0);
    }

    #[test]
    fn uncancelled_ols_pipeline_matches_core_bitwise() {
        let g = fig1();
        let cfg = OlsConfig {
            prep_trials: 150,
            seed: 21,
            ..Default::default()
        };
        let core = OrderingListingSampling::new(cfg).run(&g);
        let (cands, prep_done) = run_ols_prepare(&g, &cfg, 1, &no_deadline());
        assert_eq!(prep_done, 150);
        let run = run_optimized(&g, &cands, 20_000, cfg.sample_seed(), 2, &no_deadline());
        assert!(run.completed());
        assert_eq!(
            core.distribution
                .max_abs_diff(&run.tally.into_distribution()),
            0.0
        );
    }

    #[test]
    fn uncancelled_query_matches_core_bitwise() {
        let g = fig1();
        let b = mpmb_core::Butterfly::new(Left(0), Left(1), Right(1), Right(2));
        let core = mpmb_core::estimate_prob_of(&g, &b, 2_000, 9).unwrap();
        let q = run_query(&g, &b, 2_000, 9, &no_deadline()).unwrap();
        assert_eq!(q.trials_done, 2_000);
        assert_eq!(q.prob, core.prob);
        assert_eq!(q.conditional_max_prob, core.conditional_max_prob);
    }

    #[test]
    fn parallel_prepare_matches_sequential_candidate_indices() {
        let g = fig1();
        let cfg = OlsConfig {
            prep_trials: 150,
            seed: 21,
            ..Default::default()
        };
        let seq = OrderingListingSampling::new(cfg).prepare(&g);
        for threads in [1, 2, 3, 8] {
            let (par, done) = run_ols_prepare(&g, &cfg, threads, &no_deadline());
            assert_eq!(done, 150, "threads={threads}");
            assert_eq!(par.len(), seq.len());
            for i in 0..seq.len() {
                assert_eq!(par.get(i).butterfly, seq.get(i).butterfly, "index {i}");
                assert_eq!(par.get(i).weight.to_bits(), seq.get(i).weight.to_bits());
            }
        }
    }

    #[test]
    fn cancelled_parallel_prepare_reports_partial_progress() {
        let g = fig1();
        let cfg = OlsConfig {
            prep_trials: 1_000_000,
            seed: 3,
            ..Default::default()
        };
        let cancel = Cancel::at(Some(Instant::now()));
        let (_, done) = run_ols_prepare(&g, &cfg, 4, &cancel);
        // Each worker stops at a deadline check, so at most
        // CHECK_EVERY trials run per worker range.
        assert!(done < cfg.prep_trials);
    }

    #[test]
    fn expired_deadline_yields_partial_run() {
        let g = fig1();
        // A deadline that is already due: workers stop at their first
        // check, so at most CHECK_EVERY trials run per worker.
        let cancel = Cancel::at(Some(Instant::now()));
        let cfg = OsConfig {
            trials: 1_000_000,
            seed: 1,
            ..Default::default()
        };
        let run = run_os(&g, &cfg, 2, &cancel);
        assert!(!run.completed());
        assert!(run.trials_done < cfg.trials);
        assert_eq!(run.trials_requested, 1_000_000);
    }

    #[test]
    fn chunk_split_is_the_core_one() {
        // The split used here IS mpmb_core::chunk_ranges (single
        // definition since the duplicate was removed); check the
        // properties the bit-identical merge relies on from this side
        // too: in-order, gapless, complete coverage.
        for (total, threads) in [(10u64, 3usize), (1, 8), (100, 1), (0, 4), (1_000_000, 7)] {
            let ranges = chunk_ranges(total, threads);
            assert!(ranges.len() <= threads.max(1));
            let mut expect_start = 0u64;
            for r in &ranges {
                assert_eq!(r.start, expect_start, "total={total} threads={threads}");
                assert!(!r.is_empty());
                expect_start = r.end;
            }
            assert_eq!(expect_start, total);
        }
    }

    #[test]
    fn cancel_latches() {
        let c = Cancel::at(Some(Instant::now()));
        assert!(c.expired());
        assert!(c.expired());
        assert!(!Cancel::at(None).expired());
    }
}
