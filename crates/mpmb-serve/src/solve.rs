//! Cancellable, resumable solver drivers for the server.
//!
//! Every endpoint's computation is one [`mpmb_core::Executor`] run over
//! the corresponding [`mpmb_core::TrialEngine`] — the same single trial
//! loop the library itself uses — so a run that finishes is
//! **bit-identical** to the corresponding direct `mpmb_core` call, at
//! any thread count. The server adds two things on top:
//!
//! * a wall-clock [`Cancel`] deadline, checked every [`CHECK_EVERY`]
//!   trials (every trial for Karp-Luby, whose "trial" is a whole
//!   candidate);
//! * **resumable partials**: a timed-out run returns a [`PartialState`]
//!   capturing the merged accumulator plus the exact trial ranges that
//!   ran. Feeding that state back into the same `advance_*` call
//!   continues from where it stopped, and the completed result is still
//!   bit-identical to an uninterrupted run — this is what lets the
//!   result cache *refine* answers across repeated requests instead of
//!   recomputing from trial zero.
//!
//! Multi-phase methods (`ols`, `ols-kl`) resume at sub-phase
//! granularity: a partial may be mid-preparing, mid-sampling, or
//! mid-Karp-Luby, and the candidate set survives inside the state so
//! phase 1 never reruns.

use bigraph::fx::FxHashMap;
use bigraph::UncertainBipartiteGraph;
pub use mpmb_core::engine::{Cancel, Partial, CHECK_EVERY};
use mpmb_core::{
    count_distribution_from_histogram, Butterfly, CandidateSet, CountDistribution, CountTrials,
    Distribution, Executor, FastEstimate, FastSample, KarpLubyTrials, KlCandidate, KlTrialPolicy,
    McVpConfig, McVpTrials, OlsConfig, OptimizedTrials, OsConfig, OsTrials, PrepareTrials,
    QueryResult, QueryTrials, SublinearTrials, Tally, TrialEngine,
};

/// Where a cancelled request stopped: the method-specific accumulator
/// plus completed trial ranges, ready to resume. This is what the
/// result cache stores for timed-out requests.
#[derive(Clone, Debug)]
pub enum PartialState {
    /// Ordering Sampling mid-run.
    Os(Partial<Tally>),
    /// MC-VP mid-run.
    McVp(Partial<Tally>),
    /// OLS (either estimator) still in the preparing phase.
    OlsPrepare(Partial<Vec<Butterfly>>),
    /// OLS with the optimized estimator, mid-sampling-phase.
    OlsSample {
        /// Phase-1 output, kept so preparing never reruns.
        candidates: CandidateSet,
        /// Sampling-phase progress.
        partial: Partial<Tally>,
    },
    /// OLS with the Karp-Luby estimator, mid-estimation (one executor
    /// trial = one candidate, fully estimated).
    Kl {
        /// Phase-1 output, kept so preparing never reruns.
        candidates: CandidateSet,
        /// Per-candidate rows completed so far.
        partial: Partial<Vec<(u32, KlCandidate)>>,
    },
    /// Conditioned `/v1/query` mid-run (accumulator = hit count).
    Query(Partial<u64>),
    /// `/v1/count` mid-run (accumulator = count histogram).
    Count(Partial<FxHashMap<u64, u64>>),
    /// Sublinear `method=fast` counting tier mid-run (accumulator =
    /// index-tagged per-trial samples).
    Fast(Partial<Vec<FastSample>>),
}

impl PartialState {
    /// Short tag for logs and errors (also the phase name `mpmb solve
    /// --progress` prints).
    pub fn kind(&self) -> &'static str {
        match self {
            PartialState::Os(_) => "os",
            PartialState::McVp(_) => "mcvp",
            PartialState::OlsPrepare(_) => "ols-prepare",
            PartialState::OlsSample { .. } => "ols-sample",
            PartialState::Kl { .. } => "ols-kl",
            PartialState::Query(_) => "query",
            PartialState::Count(_) => "count",
            PartialState::Fast(_) => "fast",
        }
    }

    /// The running MPMB leader and its estimate at this point of the
    /// run, if the phase tracks one:
    ///
    /// * tally phases (`os`, `mcvp`, `ols` sampling) report the
    ///   most-hit butterfly (ties broken toward the lexicographically
    ///   larger butterfly, matching [`crate::solve`]'s finalization)
    ///   with its hit fraction;
    /// * the Karp-Luby phase reports the completed candidate with the
    ///   highest estimated `P(B)`;
    /// * preparing, query, and count phases have no leader yet.
    pub fn leader(&self) -> Option<(Butterfly, f64)> {
        fn tally_leader(p: &Partial<Tally>) -> Option<(Butterfly, f64)> {
            let trials = p.trials_done();
            if trials == 0 {
                return None;
            }
            p.acc
                .counts()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(b, &c)| (*b, c as f64 / trials as f64))
        }
        match self {
            PartialState::Os(p) | PartialState::McVp(p) => tally_leader(p),
            PartialState::OlsSample { partial, .. } => tally_leader(partial),
            PartialState::Kl {
                candidates,
                partial,
            } => partial
                .acc
                .iter()
                .max_by(|a, b| a.1.prob.total_cmp(&b.1.prob))
                .map(|(idx, c)| (candidates.get(*idx as usize).butterfly, c.prob)),
            PartialState::OlsPrepare(_)
            | PartialState::Query(_)
            | PartialState::Count(_)
            | PartialState::Fast(_) => None,
        }
    }
}

/// Outcome of one `advance_*` call: either the finished value or the
/// state to resume from next time.
#[derive(Clone, Debug)]
pub enum Outcome<T> {
    /// Every requested trial ran; the finalized result.
    Done(T),
    /// The deadline fired first; resume from this state.
    Incomplete(PartialState),
}

/// Progress report of one `advance_*` call.
#[derive(Clone, Debug)]
pub struct Progress<T> {
    /// Finished result or resumable state.
    pub outcome: Outcome<T>,
    /// Total trials completed so far (across all calls).
    pub trials_done: u64,
    /// Trials the request asked for.
    pub trials_requested: u64,
    /// Trials newly executed by *this* call (for metrics).
    pub executed: u64,
}

impl<T> Progress<T> {
    /// Whether the run finished.
    pub fn completed(&self) -> bool {
        matches!(self.outcome, Outcome::Done(_))
    }
}

/// A solve/topk request's progress.
pub type SolveProgress = Progress<Distribution>;
/// A `/v1/query` request's progress.
pub type QueryProgress = Progress<QueryResult>;
/// A `/v1/count` request's progress.
pub type CountProgress = Progress<CountDistribution>;
/// A `method=fast` request's progress.
pub type FastProgress = Progress<FastEstimate>;

/// Resumes `partial` on `exec` and returns how many trials this call
/// executed.
fn drive<E: TrialEngine>(
    exec: Executor,
    engine: &E,
    partial: &mut Partial<E::Acc>,
    cancel: &Cancel,
) -> u64 {
    let before = partial.trials_done();
    exec.resume(engine, partial, cancel);
    partial.trials_done() - before
}

fn state_mismatch<T>(method: &str, state: &PartialState) -> Result<T, String> {
    Err(format!(
        "cached partial state `{}` does not match method `{method}`",
        state.kind()
    ))
}

/// Starts or resumes a solve for `method`, running until completion or
/// until `cancel` fires. `state` is a prior call's
/// [`Outcome::Incomplete`] payload (or `None` to start fresh); the
/// caller must pass it back under the same `(graph, method, trials,
/// prep, seed)` — the cache key enforces this server-side.
///
/// Completed results are bit-identical to the corresponding direct
/// `mpmb_core` call, regardless of `threads` and of how many calls the
/// work was spread across.
#[allow(clippy::too_many_arguments)]
pub fn advance_solve(
    g: &UncertainBipartiteGraph,
    method: &str,
    trials: u64,
    prep: u64,
    seed: u64,
    threads: usize,
    state: Option<PartialState>,
    cancel: &Cancel,
) -> Result<SolveProgress, String> {
    assert!(trials > 0, "trials must be positive");
    let exec = Executor::new(threads);
    match method {
        "os" => {
            let engine = OsTrials::new(
                g,
                &OsConfig {
                    trials,
                    seed,
                    ..Default::default()
                },
            );
            let mut partial = match state {
                None => Partial::empty(engine.new_acc(), trials),
                Some(PartialState::Os(p)) => p,
                Some(other) => return state_mismatch(method, &other),
            };
            let executed = drive(exec, &engine, &mut partial, cancel);
            Ok(tally_progress(partial, executed, PartialState::Os))
        }
        "mcvp" => {
            let engine = McVpTrials::new(g, &McVpConfig { trials, seed });
            let mut partial = match state {
                None => Partial::empty(engine.new_acc(), trials),
                Some(PartialState::McVp(p)) => p,
                Some(other) => return state_mismatch(method, &other),
            };
            let executed = drive(exec, &engine, &mut partial, cancel);
            Ok(tally_progress(partial, executed, PartialState::McVp))
        }
        "ols" | "ols-kl" => advance_ols(g, method, trials, prep, seed, exec, state, cancel),
        other => Err(format!(
            "unknown method `{other}` (expected os|mcvp|ols|ols-kl)"
        )),
    }
}

/// Folds a tally-accumulating partial into a [`SolveProgress`].
fn tally_progress(
    partial: Partial<Tally>,
    executed: u64,
    wrap: fn(Partial<Tally>) -> PartialState,
) -> SolveProgress {
    let trials_done = partial.trials_done();
    let trials_requested = partial.trials_requested();
    let outcome = if partial.completed() {
        Outcome::Done(partial.acc.into_distribution())
    } else {
        Outcome::Incomplete(wrap(partial))
    };
    Progress {
        outcome,
        trials_done,
        trials_requested,
        executed,
    }
}

/// The two-phase OLS pipeline (both estimators), resumable at sub-phase
/// granularity. Reported `trials_done` counts preparing + estimation
/// trials; `trials_requested` is `prep + trials` (for Karp-Luby, which
/// picks its own per-candidate counts, a completed run reports the
/// trials it actually consumed).
#[allow(clippy::too_many_arguments)]
fn advance_ols(
    g: &UncertainBipartiteGraph,
    method: &str,
    trials: u64,
    prep: u64,
    seed: u64,
    exec: Executor,
    state: Option<PartialState>,
    cancel: &Cancel,
) -> Result<SolveProgress, String> {
    let cfg = OlsConfig {
        prep_trials: prep,
        seed,
        ..Default::default()
    };
    let mut executed = 0u64;

    // Phase 1: preparing, unless a later-phase state already has the
    // candidate set.
    let candidates = match state {
        None | Some(PartialState::OlsPrepare(_)) => {
            let prep_engine = PrepareTrials::new(g, &cfg);
            let mut p = match state {
                Some(PartialState::OlsPrepare(p)) => p,
                _ => Partial::empty(prep_engine.new_acc(), prep),
            };
            executed += drive(exec, &prep_engine, &mut p, cancel);
            if !p.completed() {
                let trials_done = p.trials_done();
                return Ok(Progress {
                    outcome: Outcome::Incomplete(PartialState::OlsPrepare(p)),
                    trials_done,
                    trials_requested: prep + trials,
                    executed,
                });
            }
            prep_engine.finalize(p.acc)
        }
        Some(PartialState::OlsSample {
            candidates,
            partial,
        }) if method == "ols" => {
            return advance_ols_sample(g, &cfg, prep, exec, candidates, partial, executed, cancel);
        }
        Some(PartialState::Kl {
            candidates,
            partial,
        }) if method == "ols-kl" => {
            return advance_kl(
                g, &cfg, trials, prep, exec, candidates, partial, executed, cancel,
            );
        }
        Some(other) => return state_mismatch(method, &other),
    };

    // Phase 2 from scratch.
    if method == "ols" {
        let partial = Partial::empty(Tally::new(), trials);
        advance_ols_sample(g, &cfg, prep, exec, candidates, partial, executed, cancel)
    } else {
        let partial = Partial::empty(Vec::new(), candidates.len() as u64);
        advance_kl(
            g, &cfg, trials, prep, exec, candidates, partial, executed, cancel,
        )
    }
}

/// OLS phase 2 with the optimized (shared-trial) estimator.
#[allow(clippy::too_many_arguments)]
fn advance_ols_sample(
    g: &UncertainBipartiteGraph,
    cfg: &OlsConfig,
    prep: u64,
    exec: Executor,
    candidates: CandidateSet,
    mut partial: Partial<Tally>,
    mut executed: u64,
    cancel: &Cancel,
) -> Result<SolveProgress, String> {
    let engine = OptimizedTrials::new(g, &candidates, cfg.sample_seed());
    executed += drive(exec, &engine, &mut partial, cancel);
    let trials_done = prep + partial.trials_done();
    let trials_requested = prep + partial.trials_requested();
    let outcome = if partial.completed() {
        Outcome::Done(partial.acc.into_distribution())
    } else {
        Outcome::Incomplete(PartialState::OlsSample {
            candidates,
            partial,
        })
    };
    Ok(Progress {
        outcome,
        trials_done,
        trials_requested,
        executed,
    })
}

/// OLS phase 2 with the Karp-Luby estimator. One executor trial is one
/// whole candidate, so cancellation is checked per candidate
/// (`check_every(1)`) and resume restarts at candidate granularity —
/// per-candidate trial counts stay part of the deterministic result.
#[allow(clippy::too_many_arguments)]
fn advance_kl(
    g: &UncertainBipartiteGraph,
    cfg: &OlsConfig,
    trials: u64,
    prep: u64,
    exec: Executor,
    candidates: CandidateSet,
    mut partial: Partial<Vec<(u32, KlCandidate)>>,
    mut executed: u64,
    cancel: &Cancel,
) -> Result<SolveProgress, String> {
    let engine = KarpLubyTrials::new(
        g,
        &candidates,
        KlTrialPolicy::Fixed(trials),
        cfg.sample_seed(),
    );
    let before = KarpLubyTrials::consumed(&partial.acc);
    exec.check_every(1).resume(&engine, &mut partial, cancel);
    let consumed = KarpLubyTrials::consumed(&partial.acc);
    executed += consumed - before;
    if partial.completed() {
        let report = engine.finalize(std::mem::take(&mut partial.acc));
        // KL chooses its own per-candidate counts; once it ran, the
        // request is complete by construction.
        Ok(Progress {
            outcome: Outcome::Done(report.distribution),
            trials_done: prep + consumed,
            trials_requested: prep + consumed,
            executed,
        })
    } else {
        Ok(Progress {
            outcome: Outcome::Incomplete(PartialState::Kl {
                candidates,
                partial,
            }),
            trials_done: prep + consumed,
            trials_requested: prep + trials,
            executed,
        })
    }
}

/// Starts or resumes a sublinear `method=fast` estimate: the cheap
/// counting tier that answers inside deadlines the per-world methods
/// cannot. Same resume contract as [`advance_solve`] — a partial fed
/// back under the same `(graph, trials, seed)` refines to the same
/// bytes an uninterrupted run produces; `delta` only shapes the final
/// confidence interval and may differ between calls without affecting
/// the sampled rows.
pub fn advance_fast(
    g: &UncertainBipartiteGraph,
    trials: u64,
    seed: u64,
    delta: f64,
    threads: usize,
    state: Option<PartialState>,
    cancel: &Cancel,
) -> Result<FastProgress, String> {
    assert!(trials > 0, "trials must be positive");
    let engine = SublinearTrials::new(g, seed);
    let mut partial = match state {
        None => Partial::empty(engine.new_acc(), trials),
        Some(PartialState::Fast(p)) => p,
        Some(other) => return state_mismatch("fast", &other),
    };
    let executed = drive(Executor::new(threads), &engine, &mut partial, cancel);
    let trials_done = partial.trials_done();
    let trials_requested = partial.trials_requested();
    let outcome = if partial.completed() {
        Outcome::Done(engine.finalize(std::mem::take(&mut partial.acc), delta))
    } else {
        Outcome::Incomplete(PartialState::Fast(partial))
    };
    Ok(Progress {
        outcome,
        trials_done,
        trials_requested,
        executed,
    })
}

/// Starts or resumes a conditioned `/v1/query` probability estimate.
/// `None` if `b` is not a backbone butterfly of `g`.
pub fn advance_query(
    g: &UncertainBipartiteGraph,
    b: &Butterfly,
    trials: u64,
    seed: u64,
    state: Option<PartialState>,
    cancel: &Cancel,
) -> Option<Result<QueryProgress, String>> {
    assert!(trials > 0, "trials must be positive");
    let engine = QueryTrials::new(g, b, seed)?;
    let mut partial = match state {
        None => Partial::empty(0, trials),
        Some(PartialState::Query(p)) => p,
        Some(other) => return Some(state_mismatch("query", &other)),
    };
    let executed = drive(Executor::new(1), &engine, &mut partial, cancel);
    let trials_done = partial.trials_done();
    let trials_requested = partial.trials_requested();
    let outcome = if partial.completed() {
        Outcome::Done(engine.finalize(partial.acc, trials))
    } else {
        Outcome::Incomplete(PartialState::Query(partial))
    };
    Some(Ok(Progress {
        outcome,
        trials_done,
        trials_requested,
        executed,
    }))
}

/// Starts or resumes a `/v1/count` butterfly-count sampling run.
pub fn advance_count(
    g: &UncertainBipartiteGraph,
    trials: u64,
    seed: u64,
    threads: usize,
    state: Option<PartialState>,
    cancel: &Cancel,
) -> Result<CountProgress, String> {
    assert!(trials > 0, "trials must be positive");
    let engine = CountTrials::new(g, seed);
    let mut partial = match state {
        None => Partial::empty(engine.new_acc(), trials),
        Some(PartialState::Count(p)) => p,
        Some(other) => return state_mismatch("count", &other),
    };
    let executed = drive(Executor::new(threads), &engine, &mut partial, cancel);
    let trials_done = partial.trials_done();
    let trials_requested = partial.trials_requested();
    let outcome = if partial.completed() {
        Outcome::Done(count_distribution_from_histogram(partial.acc, trials))
    } else {
        Outcome::Incomplete(PartialState::Count(partial))
    };
    Ok(Progress {
        outcome,
        trials_done,
        trials_requested,
        executed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{GraphBuilder, Left, Right};
    use mpmb_core::{OrderingListingSampling, OrderingSampling};
    use std::time::Instant;

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    fn unwrap_done<T>(p: Progress<T>) -> T {
        match p.outcome {
            Outcome::Done(v) => v,
            Outcome::Incomplete(s) => panic!("expected completion, got partial `{}`", s.kind()),
        }
    }

    /// Drives `advance_solve` to completion in budget-limited slices,
    /// returning the result, total trials, and how many calls it took.
    fn refine_to_completion(
        g: &UncertainBipartiteGraph,
        method: &str,
        trials: u64,
        prep: u64,
        seed: u64,
        threads: usize,
        budget: u64,
    ) -> (Distribution, u64, usize) {
        let mut state = None;
        for calls in 1..10_000 {
            let progress = advance_solve(
                g,
                method,
                trials,
                prep,
                seed,
                threads,
                state.take(),
                &Cancel::after_trials(budget),
            )
            .unwrap();
            match progress.outcome {
                Outcome::Done(d) => return (d, progress.trials_done, calls),
                Outcome::Incomplete(s) => {
                    assert!(progress.trials_done < progress.trials_requested);
                    state = Some(s);
                }
            }
        }
        panic!("refinement did not converge");
    }

    #[test]
    fn uncancelled_os_matches_core_bitwise() {
        let g = fig1();
        let cfg = OsConfig {
            trials: 1_500,
            seed: 11,
            ..Default::default()
        };
        let core = OrderingSampling::new(cfg).run(&g);
        let run = advance_solve(&g, "os", 1_500, 100, 11, 3, None, &Cancel::never()).unwrap();
        assert_eq!(run.trials_done, 1_500);
        assert_eq!(run.executed, 1_500);
        assert_eq!(core.max_abs_diff(&unwrap_done(run)), 0.0);
    }

    #[test]
    fn uncancelled_mcvp_matches_core_bitwise() {
        let g = fig1();
        let core = mpmb_core::McVp::new(McVpConfig {
            trials: 800,
            seed: 5,
        })
        .run(&g);
        let run = advance_solve(&g, "mcvp", 800, 100, 5, 2, None, &Cancel::never()).unwrap();
        assert!(run.completed());
        assert_eq!(core.max_abs_diff(&unwrap_done(run)), 0.0);
    }

    #[test]
    fn uncancelled_ols_matches_core_bitwise() {
        let g = fig1();
        let cfg = OlsConfig {
            prep_trials: 150,
            seed: 21,
            estimator: mpmb_core::EstimatorKind::Optimized { trials: 20_000 },
            ..Default::default()
        };
        let core = OrderingListingSampling::new(cfg).run(&g);
        let run = advance_solve(&g, "ols", 20_000, 150, 21, 2, None, &Cancel::never()).unwrap();
        assert_eq!(run.trials_done, 150 + 20_000);
        assert_eq!(core.distribution.max_abs_diff(&unwrap_done(run)), 0.0);
    }

    #[test]
    fn uncancelled_kl_matches_core_bitwise() {
        let g = fig1();
        let cfg = OlsConfig {
            prep_trials: 150,
            seed: 23,
            estimator: mpmb_core::EstimatorKind::KarpLuby {
                policy: KlTrialPolicy::Fixed(400),
            },
            ..Default::default()
        };
        let core = OrderingListingSampling::new(cfg).run(&g);
        let run = advance_solve(&g, "ols-kl", 400, 150, 23, 2, None, &Cancel::never()).unwrap();
        assert!(run.completed());
        assert_eq!(core.distribution.max_abs_diff(&unwrap_done(run)), 0.0);
    }

    #[test]
    fn refinement_is_bitwise_identical_for_every_method() {
        let g = fig1();
        for (method, trials, prep, budget) in [
            ("os", 2_000u64, 1u64, 300u64),
            ("mcvp", 1_000, 1, 170),
            ("ols", 5_000, 200, 450),
            ("ols-kl", 300, 200, 100),
        ] {
            let full =
                advance_solve(&g, method, trials, prep, 31, 1, None, &Cancel::never()).unwrap();
            let (refined, done, calls) =
                refine_to_completion(&g, method, trials, prep, 31, 2, budget);
            assert!(calls > 1, "{method}: budget {budget} should force slicing");
            assert_eq!(done, full.trials_done, "{method}");
            assert_eq!(
                unwrap_done(full).max_abs_diff(&refined),
                0.0,
                "{method}: refined result must be bit-identical"
            );
        }
    }

    #[test]
    fn ols_resume_does_not_rerun_preparing() {
        let g = fig1();
        // Budget smaller than prep: first call ends mid-preparing.
        let p1 =
            advance_solve(&g, "ols", 5_000, 200, 7, 1, None, &Cancel::after_trials(64)).unwrap();
        let state = match p1.outcome {
            Outcome::Incomplete(s @ PartialState::OlsPrepare(_)) => s,
            ref other => panic!("expected mid-preparing state, got {other:?}"),
        };
        assert!(p1.trials_done < 200);
        // Resume with no budget: finishes prep + sampling in one call,
        // executing only what the first call did not.
        let p2 = advance_solve(&g, "ols", 5_000, 200, 7, 1, Some(state), &Cancel::never()).unwrap();
        assert!(p2.completed());
        assert_eq!(p1.executed + p2.executed, 200 + 5_000);
    }

    #[test]
    fn query_refines_to_core_result() {
        let g = fig1();
        let b = Butterfly::new(Left(0), Left(1), Right(1), Right(2));
        let core = mpmb_core::estimate_prob_of(&g, &b, 2_000, 9).unwrap();
        let mut state = None;
        let q = loop {
            let progress =
                advance_query(&g, &b, 2_000, 9, state.take(), &Cancel::after_trials(256))
                    .unwrap()
                    .unwrap();
            match progress.outcome {
                Outcome::Done(q) => break q,
                Outcome::Incomplete(s) => state = Some(s),
            }
        };
        assert_eq!(q.prob, core.prob);
        assert_eq!(q.conditional_max_prob, core.conditional_max_prob);
    }

    #[test]
    fn query_rejects_non_backbone_butterfly() {
        let g = fig1();
        let bogus = Butterfly::new(Left(0), Left(5), Right(0), Right(1));
        assert!(advance_query(&g, &bogus, 10, 0, None, &Cancel::never()).is_none());
    }

    #[test]
    fn count_refines_to_core_result() {
        let g = fig1();
        let core = mpmb_core::sample_count_distribution_parallel(&g, 2_000, 13, 2);
        let mut state = None;
        let dist = loop {
            let progress =
                advance_count(&g, 2_000, 13, 2, state.take(), &Cancel::after_trials(300)).unwrap();
            match progress.outcome {
                Outcome::Done(d) => break d,
                Outcome::Incomplete(s) => state = Some(s),
            }
        };
        assert_eq!(dist.mean, core.mean);
        assert_eq!(dist.variance, core.variance);
    }

    #[test]
    fn fast_refines_to_core_result_bitwise() {
        let g = fig1();
        let core = mpmb_core::estimate_fast(
            &g,
            &mpmb_core::SublinearConfig {
                trials: 3_000,
                seed: 19,
                delta: 0.1,
            },
            2,
        );
        let mut state = None;
        let fe = loop {
            let progress = advance_fast(
                &g,
                3_000,
                19,
                0.1,
                2,
                state.take(),
                &Cancel::after_trials(400),
            )
            .unwrap();
            match progress.outcome {
                Outcome::Done(fe) => break fe,
                Outcome::Incomplete(s) => {
                    assert_eq!(s.kind(), "fast");
                    assert!(s.leader().is_none());
                    state = Some(s);
                }
            }
        };
        assert_eq!(fe.estimate.to_bits(), core.estimate.to_bits());
        assert_eq!(fe.variance.to_bits(), core.variance.to_bits());
        assert_eq!(fe.ci_low.to_bits(), core.ci_low.to_bits());
        assert_eq!(fe.ci_high.to_bits(), core.ci_high.to_bits());
    }

    #[test]
    fn fast_rejects_mismatched_state() {
        let g = fig1();
        let run =
            advance_solve(&g, "os", 1_000, 100, 1, 1, None, &Cancel::after_trials(64)).unwrap();
        let state = match run.outcome {
            Outcome::Incomplete(s) => s,
            Outcome::Done(_) => panic!("budget should have cancelled"),
        };
        assert!(advance_fast(&g, 1_000, 1, 0.1, 1, Some(state), &Cancel::never()).is_err());
    }

    #[test]
    fn expired_deadline_yields_resumable_partial() {
        let g = fig1();
        let cancel = Cancel::at(Some(Instant::now()));
        let run = advance_solve(&g, "os", 1_000_000, 100, 1, 2, None, &cancel).unwrap();
        assert!(!run.completed());
        assert!(run.trials_done < 1_000_000);
        assert_eq!(run.trials_requested, 1_000_000);
        // And the partial resumes to the full deterministic answer.
        let state = match run.outcome {
            Outcome::Incomplete(s) => s,
            Outcome::Done(_) => unreachable!(),
        };
        let cfg = OsConfig {
            trials: 1_000_000,
            seed: 1,
            ..Default::default()
        };
        let resumed = advance_solve(
            &g,
            "os",
            1_000_000,
            100,
            1,
            4,
            Some(state),
            &Cancel::never(),
        )
        .unwrap();
        assert!(resumed.completed());
        let core = OrderingSampling::new(cfg).run(&g);
        assert_eq!(core.max_abs_diff(&unwrap_done(resumed)), 0.0);
    }

    #[test]
    fn mismatched_state_is_rejected() {
        let g = fig1();
        let run =
            advance_solve(&g, "os", 1_000, 100, 1, 1, None, &Cancel::after_trials(64)).unwrap();
        let state = match run.outcome {
            Outcome::Incomplete(s) => s,
            Outcome::Done(_) => panic!("budget should have cancelled"),
        };
        assert!(
            advance_solve(&g, "mcvp", 1_000, 100, 1, 1, Some(state), &Cancel::never()).is_err()
        );
    }

    #[test]
    fn unknown_method_is_an_error() {
        let g = fig1();
        assert!(advance_solve(&g, "nope", 10, 10, 0, 1, None, &Cancel::never()).is_err());
    }

    #[test]
    fn cancel_latches() {
        let c = Cancel::at(Some(Instant::now()));
        assert!(c.expired());
        assert!(c.expired());
        assert!(!Cancel::never().expired());
    }
}
