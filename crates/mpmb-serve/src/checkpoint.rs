//! Durable server checkpoints: the registry manifest plus every
//! resumable partial, in one checksummed snapshot file.
//!
//! A snapshot is a single frame (see [`bigraph::codec`]) so a reader
//! always sees an atomic view: either the whole `(registry, partials)`
//! pair verifies, or the file is rejected. Writes go through a temp
//! file + `rename`, so a crash mid-write leaves the previous snapshot
//! intact; a crash between snapshots loses at most one cadence worth
//! of progress — and losing progress is *safe*, because resumed runs
//! are bit-identical however little of them survived.
//!
//! Restoring is deliberately forgiving: a missing file means a fresh
//! start, a corrupt or truncated file is reported (and counted by
//! `mpmb_checkpoint_corrupt_total`) but never a crash, and a manifest
//! entry whose graph can no longer be loaded just drops that graph and
//! its partials.

use crate::solve::PartialState;
use bigraph::codec::{open_frame, seal_frame, CodecError, Decoder, Encoder};
use bigraph::fx::FxHashMap;
use mpmb_core::engine::Partial;
use mpmb_core::{Butterfly, CandidateSet, Checkpoint, KlCandidate, Tally};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Snapshot file name inside `--checkpoint-dir`.
pub const SNAPSHOT_FILE: &str = "state.ckpt";
const MAGIC: &[u8; 8] = b"MPMBCKP1";
const VERSION: u32 = 2;

/// One registry manifest row: enough to re-attach the graph on restart
/// without re-parsing it.
///
/// Version 2 snapshots record, for container-backed graphs, the
/// container's content checksum at attach time. On restore the registry
/// re-attaches the container file (a header read, not a parse) and
/// refuses it if the checksum changed — a swapped file cannot silently
/// change answers across a crash. Version 1 snapshots decode with
/// `container_checksum: None`, which restores without the extra pin.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Registered graph name.
    pub name: String,
    /// Load spec as [`crate::registry::Registry::load`] wants it (bare
    /// path or `dataset:…`).
    pub spec: String,
    /// Content checksum of the backing container at attach time, if the
    /// graph was container-backed.
    pub container_checksum: Option<u64>,
}

impl ManifestEntry {
    /// A manifest row for an in-memory (non-container) graph.
    pub fn memory(name: impl Into<String>, spec: impl Into<String>) -> ManifestEntry {
        ManifestEntry {
            name: name.into(),
            spec: spec.into(),
            container_checksum: None,
        }
    }
}

/// One durable view of the server's resumable state.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// Registry manifest, reloadable via
    /// [`crate::registry::Registry::load_with_expected`].
    pub graphs: Vec<ManifestEntry>,
    /// Cached partials: `(cache key, state)` pairs.
    pub partials: Vec<(String, PartialState)>,
}

/// Tags for [`PartialState`] variants in the snapshot payload.
const TAG_OS: u8 = 0;
const TAG_MCVP: u8 = 1;
const TAG_OLS_PREPARE: u8 = 2;
const TAG_OLS_SAMPLE: u8 = 3;
const TAG_KL: u8 = 4;
const TAG_QUERY: u8 = 5;
const TAG_COUNT: u8 = 6;
const TAG_FAST: u8 = 7;

/// Encodes one solver state behind its tag byte. `pub(crate)`: the
/// cluster wire protocol ([`crate::cluster::proto`]) frames the same
/// encoding, so a worker's range response and a checkpointed partial
/// stay one format.
pub(crate) fn encode_state(state: &PartialState, enc: &mut Encoder) {
    match state {
        PartialState::Os(p) => {
            enc.u8(TAG_OS);
            p.encode(enc);
        }
        PartialState::McVp(p) => {
            enc.u8(TAG_MCVP);
            p.encode(enc);
        }
        PartialState::OlsPrepare(p) => {
            enc.u8(TAG_OLS_PREPARE);
            p.encode(enc);
        }
        PartialState::OlsSample {
            candidates,
            partial,
        } => {
            enc.u8(TAG_OLS_SAMPLE);
            candidates.encode(enc);
            partial.encode(enc);
        }
        PartialState::Kl {
            candidates,
            partial,
        } => {
            enc.u8(TAG_KL);
            candidates.encode(enc);
            partial.encode(enc);
        }
        PartialState::Query(p) => {
            enc.u8(TAG_QUERY);
            p.encode(enc);
        }
        PartialState::Count(p) => {
            enc.u8(TAG_COUNT);
            p.encode(enc);
        }
        PartialState::Fast(p) => {
            enc.u8(TAG_FAST);
            p.encode(enc);
        }
    }
}

/// Decodes one tagged solver state (inverse of [`encode_state`]).
pub(crate) fn decode_state(dec: &mut Decoder<'_>) -> Result<PartialState, CodecError> {
    Ok(match dec.u8()? {
        TAG_OS => PartialState::Os(Partial::<Tally>::decode(dec)?),
        TAG_MCVP => PartialState::McVp(Partial::<Tally>::decode(dec)?),
        TAG_OLS_PREPARE => PartialState::OlsPrepare(Partial::<Vec<Butterfly>>::decode(dec)?),
        TAG_OLS_SAMPLE => PartialState::OlsSample {
            candidates: CandidateSet::decode(dec)?,
            partial: Partial::<Tally>::decode(dec)?,
        },
        TAG_KL => PartialState::Kl {
            candidates: CandidateSet::decode(dec)?,
            partial: Partial::<Vec<(u32, KlCandidate)>>::decode(dec)?,
        },
        TAG_QUERY => PartialState::Query(Partial::<u64>::decode(dec)?),
        TAG_COUNT => PartialState::Count(Partial::<FxHashMap<u64, u64>>::decode(dec)?),
        TAG_FAST => PartialState::Fast(Partial::<Vec<mpmb_core::FastSample>>::decode(dec)?),
        other => {
            return Err(CodecError::Invalid(format!(
                "unknown partial-state tag {other}"
            )))
        }
    })
}

impl Snapshot {
    /// Serializes into a sealed frame ready to hit disk.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u64(self.graphs.len() as u64);
        for entry in &self.graphs {
            enc.str(&entry.name);
            enc.str(&entry.spec);
            match entry.container_checksum {
                None => enc.u8(0),
                Some(sum) => {
                    enc.u8(1);
                    enc.u64(sum);
                }
            }
        }
        enc.u64(self.partials.len() as u64);
        for (key, state) in &self.partials {
            enc.str(key);
            encode_state(state, &mut enc);
        }
        seal_frame(MAGIC, VERSION, &enc.into_bytes())
    }

    /// Parses a sealed frame back into a snapshot. Accepts both the
    /// current version-2 layout and legacy version-1 files (which carry
    /// no per-graph backing tag).
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, CodecError> {
        let (version, payload) = open_frame(MAGIC, VERSION, bytes)?;
        let mut dec = Decoder::new(payload);
        let graph_count = dec.len_capped(8)?;
        let mut graphs = Vec::with_capacity(graph_count);
        for _ in 0..graph_count {
            let name = dec.str()?;
            let spec = dec.str()?;
            let container_checksum = if version >= 2 {
                match dec.u8()? {
                    0 => None,
                    1 => Some(dec.u64()?),
                    other => {
                        return Err(CodecError::Invalid(format!(
                            "unknown manifest backing tag {other}"
                        )))
                    }
                }
            } else {
                None
            };
            graphs.push(ManifestEntry {
                name,
                spec,
                container_checksum,
            });
        }
        let partial_count = dec.len_capped(8)?;
        let mut partials = Vec::with_capacity(partial_count);
        for _ in 0..partial_count {
            let key = dec.str()?;
            let state = decode_state(&mut dec)?;
            partials.push((key, state));
        }
        if dec.remaining() != 0 {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after snapshot",
                dec.remaining()
            )));
        }
        Ok(Snapshot { graphs, partials })
    }
}

/// What loading a snapshot file produced.
#[derive(Debug)]
pub enum LoadOutcome {
    /// No snapshot file exists — a fresh start.
    Missing,
    /// The file exists but failed verification; skip it (the reason is
    /// for the warning log).
    Corrupt(String),
    /// A verified snapshot.
    Loaded(Snapshot),
}

/// Reads and writes snapshots under one directory. Writes are
/// serialized by an internal lock (the cadence thread and the final
/// drain snapshot may race) and are atomic via temp file + rename.
pub struct CheckpointStore {
    dir: PathBuf,
    write_lock: Mutex<()>,
}

impl CheckpointStore {
    /// A store rooted at `dir`, creating it if needed.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            write_lock: Mutex::new(()),
        })
    }

    /// The snapshot file path.
    pub fn path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// Durably replaces the snapshot file with `snapshot`.
    pub fn write(&self, snapshot: &Snapshot) -> std::io::Result<()> {
        let _guard = self.write_lock.lock().unwrap_or_else(|e| e.into_inner());
        let bytes = snapshot.to_bytes();
        let tmp = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.path())
    }

    /// Loads the current snapshot, classifying every failure mode.
    pub fn load(&self) -> LoadOutcome {
        load_file(&self.path())
    }
}

/// [`CheckpointStore::load`] against an explicit path.
pub fn load_file(path: &Path) -> LoadOutcome {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Missing,
        Err(e) => return LoadOutcome::Corrupt(format!("cannot read {}: {e}", path.display())),
    };
    match Snapshot::from_bytes(&bytes) {
        Ok(s) => LoadOutcome::Loaded(s),
        Err(e) => LoadOutcome::Corrupt(format!("invalid snapshot {}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{advance_solve, Cancel, Outcome};
    use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    /// Runs `method` under a trial budget until it yields a partial.
    fn make_partial(method: &str, trials: u64, prep: u64, budget: u64) -> PartialState {
        let g = fig1();
        let progress = advance_solve(
            &g,
            method,
            trials,
            prep,
            31,
            1,
            None,
            &Cancel::after_trials(budget),
        )
        .unwrap();
        match progress.outcome {
            Outcome::Incomplete(s) => s,
            Outcome::Done(_) => panic!("budget {budget} should have interrupted {method}"),
        }
    }

    /// Every [`PartialState`] variant round-trips through a snapshot and
    /// then *completes* to the same result as the uninterrupted run.
    #[test]
    fn every_variant_round_trips_and_resumes_identically() {
        let g = fig1();
        let cases: [(&str, u64, u64, u64); 4] = [
            ("os", 2_000, 1, 300),
            ("mcvp", 1_000, 1, 170),
            ("ols", 5_000, 200, 450),  // mid-sampling
            ("ols-kl", 300, 200, 202), // past prep, mid-KL (fig1 has 3 candidates)
        ];
        for (method, trials, prep, budget) in cases {
            let state = make_partial(method, trials, prep, budget);
            let snap = Snapshot {
                graphs: vec![ManifestEntry::memory("g", "dataset:abide:0.01:3")],
                partials: vec![(format!("solve|g|{method}"), state)],
            };
            let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
            assert_eq!(back.graphs, snap.graphs);
            assert_eq!(back.partials.len(), 1);
            assert_eq!(back.partials[0].0, format!("solve|g|{method}"));

            let restored = back.partials.into_iter().next().unwrap().1;
            assert_eq!(restored.kind(), snap.partials[0].1.kind());
            let full =
                advance_solve(&g, method, trials, prep, 31, 1, None, &Cancel::never()).unwrap();
            let resumed = advance_solve(
                &g,
                method,
                trials,
                prep,
                31,
                2,
                Some(restored),
                &Cancel::never(),
            )
            .unwrap();
            let (full_d, resumed_d) = match (full.outcome, resumed.outcome) {
                (Outcome::Done(a), Outcome::Done(b)) => (a, b),
                _ => panic!("{method}: both runs must complete"),
            };
            assert_eq!(
                full_d.max_abs_diff(&resumed_d),
                0.0,
                "{method}: restored partial must complete bit-identically"
            );
        }
    }

    /// The fast tier's checkpoint variant round-trips and the restored
    /// partial completes bit-identically to the uninterrupted estimate.
    #[test]
    fn fast_partial_round_trips_and_resumes_identically() {
        use crate::solve::advance_fast;
        let g = fig1();
        let progress =
            advance_fast(&g, 2_000, 31, 0.1, 1, None, &Cancel::after_trials(300)).unwrap();
        let state = match progress.outcome {
            Outcome::Incomplete(s) => s,
            Outcome::Done(_) => panic!("budget should have interrupted the fast run"),
        };
        assert_eq!(state.kind(), "fast");
        let snap = Snapshot {
            graphs: vec![],
            partials: vec![("fast|g|2000|31|0.1".to_string(), state)],
        };
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let restored = back.partials.into_iter().next().unwrap().1;
        assert_eq!(restored.kind(), "fast");

        let full = advance_fast(&g, 2_000, 31, 0.1, 1, None, &Cancel::never()).unwrap();
        let resumed =
            advance_fast(&g, 2_000, 31, 0.1, 2, Some(restored), &Cancel::never()).unwrap();
        match (full.outcome, resumed.outcome) {
            (Outcome::Done(a), Outcome::Done(b)) => {
                assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
                assert_eq!(a.variance.to_bits(), b.variance.to_bits());
                assert_eq!(a.ci_low.to_bits(), b.ci_low.to_bits());
                assert_eq!(a.ci_high.to_bits(), b.ci_high.to_bits());
            }
            _ => panic!("both fast runs must complete"),
        }
    }

    #[test]
    fn prepare_phase_partial_round_trips() {
        let state = make_partial("ols", 5_000, 200, 64);
        assert_eq!(state.kind(), "ols-prepare");
        let snap = Snapshot {
            graphs: vec![],
            partials: vec![("k".to_string(), state)],
        };
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back.partials[0].1.kind(), "ols-prepare");
    }

    #[test]
    fn store_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("mpmb-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(matches!(store.load(), LoadOutcome::Missing));

        let snap = Snapshot {
            graphs: vec![ManifestEntry::memory("g", "dataset:abide:0.01:3")],
            partials: vec![(
                "count|g|100|7".to_string(),
                make_partial("os", 2_000, 1, 64),
            )],
        };
        store.write(&snap).unwrap();
        match store.load() {
            LoadOutcome::Loaded(s) => {
                assert_eq!(s.graphs, snap.graphs);
                assert_eq!(s.partials.len(), 1);
            }
            other => panic!("expected Loaded, got {other:?}"),
        }

        // Corrupt the file in place: load reports Corrupt, not a panic.
        let path = store.path();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load(), LoadOutcome::Corrupt(_)));

        // Truncation too.
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(matches!(store.load(), LoadOutcome::Corrupt(_)));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let snap = Snapshot::default();
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert!(back.graphs.is_empty() && back.partials.is_empty());
    }

    /// Container-backed manifest rows carry their checksum through the
    /// snapshot bit-exactly.
    #[test]
    fn container_manifest_entries_round_trip() {
        let snap = Snapshot {
            graphs: vec![
                ManifestEntry::memory("a", "dataset:abide:0.01:3"),
                ManifestEntry {
                    name: "b".to_string(),
                    spec: "/tmp/b.ubgc".to_string(),
                    // Checksums use all 64 bits; exercise the high ones.
                    container_checksum: Some(0xDEAD_BEEF_F00D_0001),
                },
            ],
            partials: vec![],
        };
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back.graphs, snap.graphs);
    }

    /// A hand-encoded version-1 snapshot (no backing tags) still loads;
    /// its graphs come back with `container_checksum: None`.
    #[test]
    fn version1_snapshot_still_decodes() {
        let mut enc = Encoder::new();
        enc.u64(2); // graph count
        enc.str("g1");
        enc.str("dataset:abide:0.01:3");
        enc.str("g2");
        enc.str("/tmp/g2.txt");
        enc.u64(0); // partial count
        let bytes = seal_frame(MAGIC, 1, &enc.into_bytes());
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(
            back.graphs,
            vec![
                ManifestEntry::memory("g1", "dataset:abide:0.01:3"),
                ManifestEntry::memory("g2", "/tmp/g2.txt"),
            ]
        );
        assert!(back.partials.is_empty());
    }

    /// An unknown backing tag in a v2 manifest is an error, not a panic.
    #[test]
    fn unknown_backing_tag_is_rejected() {
        let mut enc = Encoder::new();
        enc.u64(1);
        enc.str("g");
        enc.str("/tmp/g.ubgc");
        enc.u8(7); // bogus tag
        enc.u64(0);
        let bytes = seal_frame(MAGIC, VERSION, &enc.into_bytes());
        assert!(Snapshot::from_bytes(&bytes).is_err());
    }
}
