//! The query daemon: accept loop, worker pool, routing, and handlers.
//!
//! One accept thread pushes connections into a bounded queue; when the
//! queue is full the connection is answered `429` immediately (load
//! shedding) instead of growing an unbounded backlog. A fixed pool of
//! worker threads pops connections and speaks keep-alive HTTP/1.1 on
//! them. Shutdown (SIGTERM, SIGINT, or `POST /admin/shutdown`) stops
//! the accept loop, drains every queued and in-flight request, then
//! joins the pool.
//!
//! Every request runs under an [`obs::ObsCtx`]: a trace id (the
//! client's `X-Request-Id` if present, freshly minted otherwise, echoed
//! back in the response), a per-request [`obs::Profile`] that solver
//! phase spans aggregate into, and the server's shared
//! [`obs::SolverMetrics`] so engine phases land in `/metrics`
//! histograms. Solve-like requests additionally push a summary into a
//! ring buffer served by `GET /debug/trace`.

use crate::cache::{CacheEntry, ResultCache};
use crate::checkpoint::{CheckpointStore, LoadOutcome, Snapshot};
use crate::cluster::{self, Cluster, ClusterError, Role};
use crate::fault::{self, FaultAction, FaultPlan};
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::json::Json;
use crate::metrics::{endpoint_index, Metrics};
use crate::registry::{Registry, RegistryError};
use crate::signal;
use crate::solve::{self, Cancel, Outcome, PartialState};
use mpmb_core::{Butterfly, Distribution};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server tunables, mapped 1:1 onto `mpmb serve` flags.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7700` (port 0 = ephemeral).
    pub listen: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Bounded accept-queue depth; beyond it connections get 429.
    pub queue: usize,
    /// Per-request deadline in milliseconds (0 = none); over-deadline
    /// solves return 503 with partial trial counts.
    pub timeout_ms: u64,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum client-requested solver `threads` per request (0 = use
    /// the worker-pool size). Requests above the cap are rejected with
    /// 400 rather than silently clamped — results are thread-count
    /// independent, so clamping would only hide a misconfigured client.
    pub max_solver_threads: usize,
    /// Directory for durable snapshots of the registry manifest and
    /// every resumable partial (`None` disables checkpointing). On
    /// startup a verified snapshot there is restored: graphs reload and
    /// re-issued requests resume instead of restarting at trial zero.
    pub checkpoint_dir: Option<PathBuf>,
    /// Cadence between background snapshots, in milliseconds. A final
    /// snapshot is always written after a graceful drain.
    pub checkpoint_every_ms: u64,
    /// Fault-injection spec (see [`crate::fault`]); `None` serves
    /// faithfully.
    pub fault_plan: Option<String>,
    /// Which cluster role this process plays (see [`crate::cluster`]).
    pub role: Role,
    /// Worker addresses (`host:port`) a coordinator scatters to.
    /// Required (non-empty) when `role` is [`Role::Coordinator`],
    /// ignored otherwise.
    pub workers: Vec<String>,
    /// Cadence of the coordinator's `/healthz` probe loop, in
    /// milliseconds.
    pub probe_interval_ms: u64,
    /// Graph-residency budget in bytes (0 = unlimited). When tracked
    /// graph bytes — or, with the counting allocator installed, live
    /// process heap — exceed it, cold container-backed graphs are
    /// evicted and re-materialize on next use.
    pub mem_budget: u64,
    /// How many solve summaries `GET /debug/trace` retains. The CLI
    /// rejects 0; the server itself clamps to at least 1.
    pub trace_ring: usize,
    /// Whether solve-like responses carry an `X-Mpmb-Budget` debug
    /// header with the per-bucket deadline spend.
    pub budget_header: bool,
    /// Whether a completed `method=fast` answer whose certified CI
    /// misses the requested relative error additionally seeds (or
    /// advances) the exact os-tier partial under the os cache key
    /// within the request's remaining deadline — so a `method=os`
    /// retry refines toward the exact answer instead of starting at
    /// trial zero.
    pub fast_escalate: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:7700".to_string(),
            threads: 4,
            queue: 64,
            timeout_ms: 0,
            cache_capacity: 256,
            max_solver_threads: 0,
            checkpoint_dir: None,
            checkpoint_every_ms: 5_000,
            fault_plan: None,
            role: Role::Single,
            workers: Vec::new(),
            probe_interval_ms: 1_000,
            mem_budget: 0,
            trace_ring: 64,
            budget_header: false,
            fast_escalate: false,
        }
    }
}

/// Wall-clock attribution of one solve-like request into the named
/// deadline-budget buckets of [`crate::metrics::BUDGET_BUCKETS`].
/// Derived from the request's phase profile: every recorded phase maps
/// onto exactly one bucket (worker-stitched `addr/phase` entries are
/// classified by their phase suffix), and whatever wall time no phase
/// accounted for lands in `finalize` — response shaping, cache writes,
/// serialization. Because nested spans (e.g. `ols.listing` inside an
/// OLS prepare) can overlap, the classified sum may exceed wall time;
/// `finalize` saturates at zero rather than going negative.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Budget {
    /// Accept-queue wait before a worker thread picked the connection
    /// up (first request on the connection only).
    pub queue: f64,
    /// Container materialization of the request's graph.
    pub materialize: f64,
    /// Candidate preparation: OLS prepare passes and listing phases.
    pub prepare: f64,
    /// Trial execution (sampling phases, plus time on legacy workers
    /// that ship no profile).
    pub trials: f64,
    /// Cluster dispatch and merge: scatter/gather overhead plus
    /// per-worker wall time no worker phase accounted for.
    pub network: f64,
    /// Everything else — wall time outside every recorded phase.
    pub finalize: f64,
}

impl Budget {
    /// Classifies a phase profile against the request's wall time.
    pub fn from_phases(phases: &[obs::PhaseStat], wall_secs: f64) -> Budget {
        let mut b = Budget::default();
        for p in phases {
            // Worker-stitched phases arrive as `addr/phase`; classify
            // by the phase name alone.
            let name = p.name.rsplit('/').next().unwrap_or(&p.name);
            let slot = match name {
                "queue.wait" => &mut b.queue,
                "registry.materialize" => &mut b.materialize,
                "cluster.merge" | "cluster.network" => &mut b.network,
                "unattributed" => &mut b.trials,
                n if n.contains("prepare") || n.contains("listing") => &mut b.prepare,
                _ => &mut b.trials,
            };
            *slot += p.secs;
        }
        b.finalize =
            (wall_secs - b.queue - b.materialize - b.prepare - b.trials - b.network).max(0.0);
        b
    }

    /// Bucket values in [`crate::metrics::BUDGET_BUCKETS`] order.
    pub fn values(&self) -> [f64; 6] {
        [
            self.queue,
            self.materialize,
            self.prepare,
            self.trials,
            self.network,
            self.finalize,
        ]
    }

    /// The `X-Mpmb-Budget` header value: `bucket=seconds` pairs joined
    /// with `;`, microsecond precision.
    pub fn header_value(&self) -> String {
        crate::metrics::BUDGET_BUCKETS
            .iter()
            .zip(self.values())
            .map(|(name, secs)| format!("{name}={secs:.6}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    fn to_json(self) -> Json {
        Json::Obj(
            crate::metrics::BUDGET_BUCKETS
                .iter()
                .zip(self.values())
                .map(|(name, secs)| (name.to_string(), Json::Num(secs)))
                .collect(),
        )
    }
}

/// One completed solve-like request, as retained for `/debug/trace`.
#[derive(Clone, Debug)]
pub struct SolveTrace {
    /// The request's trace id (client-supplied or minted).
    pub trace_id: String,
    /// Request path, e.g. `/v1/solve`.
    pub endpoint: String,
    /// The `graph` field of the request body (empty if unparseable).
    pub graph: String,
    /// Response status.
    pub status: u16,
    /// End-to-end request duration in microseconds.
    pub dur_us: u64,
    /// Whether the graph was already materialized when the solve
    /// started (`None` when the request never reached a graph, e.g.
    /// 400/404s). `false` means this request paid a container
    /// materialization.
    pub resident_at_start: Option<bool>,
    /// Solver phase breakdown recorded while handling the request.
    pub phases: Vec<obs::PhaseStat>,
    /// Deadline-budget attribution of the request's wall time.
    pub budget: Budget,
}

impl SolveTrace {
    fn to_json(&self) -> Json {
        let phases: Vec<(String, Json)> = self
            .phases
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    Json::obj([
                        ("seconds", Json::Num(p.secs)),
                        ("items", Json::Num(p.items as f64)),
                        ("calls", Json::Num(p.calls as f64)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("trace_id".to_string(), Json::Str(self.trace_id.clone())),
            ("endpoint".to_string(), Json::Str(self.endpoint.clone())),
            ("graph".to_string(), Json::Str(self.graph.clone())),
            ("status".to_string(), Json::Num(self.status as f64)),
            ("dur_us".to_string(), Json::Num(self.dur_us as f64)),
            (
                "resident_at_start".to_string(),
                match self.resident_at_start {
                    Some(b) => Json::Bool(b),
                    None => Json::Null,
                },
            ),
            ("phases".to_string(), Json::Obj(phases)),
            ("budget".to_string(), self.budget.to_json()),
        ])
    }
}

/// Shared state every worker sees.
pub struct AppState {
    /// Named graphs.
    pub registry: Registry,
    /// Deterministic result cache.
    pub cache: ResultCache,
    /// Serving metrics.
    pub metrics: Metrics,
    /// Solver-phase metric handles, registered on the same registry as
    /// [`AppState::metrics`] and installed into every request's
    /// [`obs::ObsCtx`].
    pub solver: Arc<obs::SolverMetrics>,
    /// Ring of recent solve summaries behind `GET /debug/trace`.
    pub traces: obs::Ring<SolveTrace>,
    /// Per-request deadline.
    pub timeout: Option<Duration>,
    /// Resolved per-request solver thread cap (`max_solver_threads`, or
    /// the worker-pool size when that was 0).
    pub solver_thread_cap: usize,
    /// Durable snapshot store (`None` when checkpointing is off).
    pub checkpoints: Option<CheckpointStore>,
    /// Active fault-injection plan (`None` serves faithfully).
    pub faults: Option<FaultPlan>,
    /// Coordinator-side cluster state (`None` for single/worker roles:
    /// those solve locally).
    pub cluster: Option<Cluster>,
    /// Whether solve-like responses carry the `X-Mpmb-Budget` header.
    pub budget_header: bool,
    /// Whether uncertified fast answers escalate to the exact tier
    /// (see [`ServerConfig::fast_escalate`]).
    pub fast_escalate: bool,
    /// Per-worker instant of the last successful federation scrape,
    /// behind the `GET /metrics/cluster` staleness gauges.
    federation_seen: Mutex<std::collections::HashMap<String, Instant>>,
    /// Raised to begin a graceful drain.
    shutdown: AtomicBool,
}

impl AppState {
    /// Whether a drain has been requested (flag or signal).
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::requested()
    }
}

/// A running server; dropping it does NOT stop it — call
/// [`Server::begin_shutdown`] then [`Server::join`].
pub struct Server {
    /// The bound address (resolves port 0).
    pub addr: SocketAddr,
    state: Arc<AppState>,
    accept_handle: std::thread::JoinHandle<()>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    checkpoint_handle: Option<std::thread::JoinHandle<()>>,
    probe_handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the pool, and starts accepting. If the config
    /// names a checkpoint directory holding a verified snapshot, the
    /// registry and resumable partials are restored before the first
    /// connection is accepted.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let faults = match &cfg.fault_plan {
            None => None,
            Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("--fault-plan: {e}"),
                )
            })?),
        };
        let checkpoints = match &cfg.checkpoint_dir {
            None => None,
            Some(dir) => Some(CheckpointStore::new(dir)?),
        };

        let metrics = Metrics::default();
        let solver = Arc::new(obs::SolverMetrics::new(Arc::clone(metrics.registry())));
        let registry = Registry::with_budget(cfg.mem_budget);
        registry.attach_metrics(
            metrics.registry(),
            Arc::clone(&metrics.graph_evictions),
            Arc::clone(&metrics.graph_materializations),
        );
        let cluster_state = match cfg.role {
            Role::Coordinator => {
                if cfg.workers.is_empty() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "--role coordinator requires at least one --workers address",
                    ));
                }
                Some(Cluster::new(cfg.workers.clone(), &metrics))
            }
            Role::Single | Role::Worker => None,
        };
        let state = Arc::new(AppState {
            registry,
            cache: ResultCache::new(cfg.cache_capacity),
            metrics,
            solver,
            traces: obs::Ring::new(cfg.trace_ring.max(1)),
            timeout: (cfg.timeout_ms > 0).then(|| Duration::from_millis(cfg.timeout_ms)),
            solver_thread_cap: if cfg.max_solver_threads == 0 {
                cfg.threads.max(1)
            } else {
                cfg.max_solver_threads
            },
            checkpoints,
            faults,
            cluster: cluster_state,
            budget_header: cfg.budget_header,
            fast_escalate: cfg.fast_escalate,
            federation_seen: Mutex::new(std::collections::HashMap::new()),
            shutdown: AtomicBool::new(false),
        });

        restore_from_checkpoint(&state);

        let checkpoint_handle = state.checkpoints.as_ref().map(|_| {
            let state = Arc::clone(&state);
            let every = Duration::from_millis(cfg.checkpoint_every_ms.max(1));
            std::thread::Builder::new()
                .name("mpmb-checkpoint".to_string())
                .spawn(move || {
                    let mut last = Instant::now();
                    while !state.shutting_down() {
                        std::thread::sleep(POLL_INTERVAL.min(every));
                        if last.elapsed() >= every {
                            write_checkpoint(&state);
                            last = Instant::now();
                        }
                    }
                    // The final post-drain snapshot is written by
                    // `Server::join` once the workers are done.
                })
                .expect("spawn checkpoint thread")
        });

        // Coordinator-only: periodic `/healthz` probes flip per-worker
        // up/down bits, so crashed-and-restarted workers rejoin
        // without traffic having to discover them.
        let probe_handle = state.cluster.as_ref().map(|_| {
            let state = Arc::clone(&state);
            let every = Duration::from_millis(cfg.probe_interval_ms.max(1));
            std::thread::Builder::new()
                .name("mpmb-probe".to_string())
                .spawn(move || {
                    let mut last = Instant::now();
                    while !state.shutting_down() {
                        std::thread::sleep(POLL_INTERVAL.min(every));
                        if last.elapsed() >= every {
                            if let Some(cluster) = &state.cluster {
                                cluster.members.probe_all(&state.metrics);
                            }
                            last = Instant::now();
                        }
                    }
                })
                .expect("spawn probe thread")
        });

        let (tx, rx) = sync_channel::<(TcpStream, Instant)>(cfg.queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles: Vec<_> = (0..cfg.threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("mpmb-worker-{i}"))
                    .spawn(move || worker_loop(&state, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let accept_state = Arc::clone(&state);
        let accept_handle = std::thread::Builder::new()
            .name("mpmb-accept".to_string())
            .spawn(move || {
                accept_loop(&accept_state, &listener, tx);
                // `tx` drops here; workers drain the queue and exit.
            })
            .expect("spawn accept loop");

        Ok(Server {
            addr,
            state,
            accept_handle,
            worker_handles,
            checkpoint_handle,
            probe_handle,
        })
    }

    /// The shared state (registry pre-loading, tests).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Requests a graceful drain: stop accepting, finish in-flight work.
    pub fn begin_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept loop and every worker have exited, then
    /// writes the final snapshot — after the drain, so it captures
    /// every partial the in-flight requests produced.
    pub fn join(self) {
        self.accept_handle.join().expect("accept loop panicked");
        for h in self.worker_handles {
            h.join().expect("worker panicked");
        }
        if let Some(h) = self.checkpoint_handle {
            h.join().expect("checkpoint thread panicked");
        }
        if let Some(h) = self.probe_handle {
            h.join().expect("probe thread panicked");
        }
        write_checkpoint(&self.state);
    }
}

/// Restores a verified snapshot into the registry and cache. Missing
/// files mean a fresh start; corrupt ones are counted and skipped —
/// never a crash. Manifest graphs that no longer load just drop, along
/// with any partials keyed to them.
fn restore_from_checkpoint(state: &AppState) {
    let Some(store) = &state.checkpoints else {
        return;
    };
    let snapshot = match store.load() {
        LoadOutcome::Missing => return,
        LoadOutcome::Corrupt(msg) => {
            state.metrics.checkpoint_corrupt.inc();
            eprintln!("mpmb-serve: ignoring corrupt checkpoint: {msg}");
            return;
        }
        LoadOutcome::Loaded(s) => s,
    };
    for entry in &snapshot.graphs {
        // Registry sources read back as `file:PATH` or `dataset:…`;
        // `load` wants the bare path for the former. Container-backed
        // graphs re-attach (a header read) with their recorded checksum
        // pinned, so a file swapped while the server was down is
        // refused instead of silently changing answers.
        let spec = entry.spec.strip_prefix("file:").unwrap_or(&entry.spec);
        let name = &entry.name;
        match state
            .registry
            .load_with_expected(name, spec, entry.container_checksum)
        {
            Ok(_) | Err(RegistryError::Exists(_)) => {}
            Err(e) => eprintln!("mpmb-serve: checkpoint graph `{name}` not restored: {e}"),
        }
    }
    let mut restored = 0u64;
    for (key, partial) in snapshot.partials {
        // Cache keys are `kind|graph|…`; only re-seed partials whose
        // graph made it back.
        let graph = key.split('|').nth(1).unwrap_or("");
        if state.registry.get(graph).is_none() {
            eprintln!("mpmb-serve: dropping checkpointed partial `{key}`: graph missing");
            continue;
        }
        state.cache.put(&key, CacheEntry::Partial(partial));
        restored += 1;
    }
    state.metrics.checkpoint_restored.add(restored);
}

/// Writes one snapshot of the current registry manifest + partials.
fn write_checkpoint(state: &AppState) {
    let Some(store) = &state.checkpoints else {
        return;
    };
    let snapshot = Snapshot {
        graphs: state
            .registry
            .list()
            .iter()
            .map(|(name, handle)| crate::checkpoint::ManifestEntry {
                name: name.clone(),
                spec: handle.source.clone(),
                container_checksum: handle.container_checksum(),
            })
            .collect(),
        partials: state.cache.partials(),
    };
    match store.write(&snapshot) {
        Ok(()) => state.metrics.checkpoint_written.inc(),
        Err(e) => eprintln!("mpmb-serve: checkpoint write failed: {e}"),
    }
}

/// How long the accept loop sleeps between polls when idle, and the
/// worker read timeout used to poll the shutdown flag on idle
/// keep-alive connections.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

fn accept_loop(
    state: &AppState,
    listener: &TcpListener,
    tx: std::sync::mpsc::SyncSender<(TcpStream, Instant)>,
) {
    loop {
        if state.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                state.metrics.connections.inc();
                match tx.try_send((stream, Instant::now())) {
                    Ok(()) => {}
                    Err(TrySendError::Full((mut stream, _))) => {
                        state.metrics.load_shed.inc();
                        let resp = Response::error(429, "server overloaded, try again later")
                            .with_header("Retry-After", "1");
                        let _ = write_response(&mut stream, &resp, true);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn worker_loop(state: &AppState, rx: &Mutex<Receiver<(TcpStream, Instant)>>) {
    loop {
        // Holding the lock while blocked in `recv` is the intended
        // hand-off: whichever worker holds it takes the next connection.
        // Recover from poisoning: a sibling panicking between `recv`
        // and the guard drop must not take the whole pool down.
        let (stream, queued_at) = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(s) => s,
            Err(_) => return, // accept loop gone and queue drained
        };
        handle_connection(state, stream, queued_at.elapsed());
    }
}

/// Decrements the inflight gauge on drop, so a panic unwinding out of
/// request handling cannot leak a permanently-inflated gauge.
struct InflightGuard<'a>(&'a Metrics);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.sub(1);
    }
}

fn handle_connection(state: &AppState, stream: TcpStream, queued: Duration) {
    // Finite read timeout so idle keep-alive connections notice a drain.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Accept-queue wait is a connection-level cost; charge it to the
    // first request's budget and no other.
    let mut queue_wait = Some(queued);
    loop {
        match read_request(&mut reader) {
            Err(ReadError::Closed) => return,
            Err(ReadError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if state.shutting_down() {
                    return;
                }
            }
            Err(ReadError::Io(_)) => return,
            Err(ReadError::Bad { status, msg }) => {
                let resp = Response::error(status, &msg);
                state
                    .metrics
                    .record(endpoint_index("/"), status, Duration::ZERO);
                let _ = write_response(&mut writer, &resp, true);
                return;
            }
            Ok(req) => {
                let injected = state
                    .faults
                    .as_ref()
                    .and_then(|plan| plan.decide(&req.method, &req.path));
                if injected.is_some() {
                    state.metrics.faults_injected.inc();
                }
                if injected == Some(FaultAction::Reset) {
                    // Drop the connection cold: the client sees a
                    // transport error and retries.
                    return;
                }
                let started = Instant::now();
                state.metrics.inflight.add(1);
                let inflight = InflightGuard(&state.metrics);
                let trace_id: Arc<str> = match req.header("x-request-id") {
                    Some(v) if !v.is_empty() => Arc::from(v),
                    _ => obs::next_trace_id(),
                };
                let profile = Arc::new(obs::Profile::new());
                let queued_secs = queue_wait.take().map_or(0.0, |w| w.as_secs_f64());
                if queued_secs > 0.0 {
                    profile.absorb("queue.wait", queued_secs, 0, 1);
                }
                // One poisoned request must not take down the worker:
                // panics (injected or real) are caught here, the
                // connection is closed without a response, and the pool
                // keeps serving. Shared state stays sound across the
                // unwind — its locks recover from poisoning.
                let handled = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let _obs = obs::install(obs::ObsCtx {
                        trace_id: Some(Arc::clone(&trace_id)),
                        span: Some(obs::SpanContext::root(Arc::clone(&trace_id))),
                        profile: Some(Arc::clone(&profile)),
                        solver: Some(Arc::clone(&state.solver)),
                    });
                    if injected == Some(FaultAction::Panic) {
                        panic!("fault injection: forced worker panic");
                    }
                    let resp = route(state, &req);
                    let elapsed = started.elapsed();
                    obs::event(
                        "http.access",
                        &[
                            ("method", req.method.as_str().into()),
                            ("path", req.path.as_str().into()),
                            ("status", (resp.status as u64).into()),
                            ("dur_us", (elapsed.as_micros() as u64).into()),
                        ],
                    );
                    (resp, elapsed)
                }));
                drop(inflight);
                let (resp, elapsed) = match handled {
                    Ok(pair) => pair,
                    Err(_) => {
                        state.metrics.worker_panics.inc();
                        state
                            .metrics
                            .record(endpoint_index(&req.path), 500, started.elapsed());
                        return;
                    }
                };
                state
                    .metrics
                    .record(endpoint_index(&req.path), resp.status, elapsed);
                // Deadline-budget attribution covers accept to response:
                // handler wall time plus the connection's queue wait.
                let budget = solve_like(&req.path).then(|| {
                    let b = Budget::from_phases(
                        &profile.snapshot(),
                        elapsed.as_secs_f64() + queued_secs,
                    );
                    state.metrics.observe_budget(b.values());
                    b
                });
                record_solve_trace(
                    state,
                    &req,
                    resp.status,
                    &trace_id,
                    elapsed,
                    &profile,
                    budget,
                );
                let mut resp = resp.with_header("X-Request-Id", trace_id.as_ref());
                if state.budget_header {
                    if let Some(b) = &budget {
                        resp = resp.with_header("X-Mpmb-Budget", b.header_value());
                    }
                }
                let close = !req.keep_alive() || state.shutting_down();
                match injected {
                    Some(action) => {
                        match fault::write_degraded(&mut writer, &resp, close, action) {
                            Ok(true) => {}
                            Ok(false) | Err(_) => return,
                        }
                    }
                    None => {
                        if write_response(&mut writer, &resp, close).is_err() || close {
                            return;
                        }
                    }
                }
            }
        }
    }
}

thread_local! {
    /// Residency of the request's graph at the moment the handler first
    /// touched it, captured by [`materialize_graph`] and read back by
    /// [`record_solve_trace`]. Thread-local works because a request is
    /// routed and trace-recorded on the same worker thread.
    static RESIDENCY_AT_START: std::cell::Cell<Option<bool>> = const { std::cell::Cell::new(None) };
}

/// Resolves a graph handle into a solver-ready graph, materializing a
/// container-backed one on first use. Records whether the graph was
/// already resident for the request trace. The returned `Arc` pins the
/// graph against eviction for as long as the handler holds it.
fn materialize_graph(
    state: &AppState,
    handle: &Arc<crate::registry::GraphHandle>,
) -> Result<Arc<bigraph::UncertainBipartiteGraph>, Response> {
    let resident = handle.is_resident();
    RESIDENCY_AT_START.with(|c| c.set(Some(resident)));
    let mut sp = obs::span("registry.materialize");
    sp.field("resident", resident);
    state.registry.materialize(handle).map_err(|e| {
        Response::error(503, &format!("graph unavailable: {e}")).with_header("Retry-After", "1")
    })
}

/// Dispatches one request to its handler.
fn route(state: &AppState, req: &Request) -> Response {
    RESIDENCY_AT_START.with(|c| c.set(None));
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(state),
        ("GET", "/v1/graphs") => handle_list_graphs(state),
        ("POST", "/v1/graphs") => handle_register_graph(state, req),
        ("POST", "/v1/solve") => handle_solve(state, req, SolveMode::Solve),
        ("POST", "/v1/topk") => handle_solve(state, req, SolveMode::TopK),
        ("POST", "/v1/query") => handle_query(state, req),
        ("POST", "/v1/count") => handle_count(state, req),
        ("POST", "/v1/internal/solve-range") => cluster::worker::handle_solve_range(state, req),
        ("GET", "/metrics") => Response::metrics_text(state.metrics.render()),
        ("GET", "/metrics/cluster") => handle_metrics_cluster(state),
        ("GET", "/debug/trace") => handle_debug_trace(state, req),
        ("POST", "/admin/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            Response::json(202, Json::obj([("draining", Json::Bool(true))]).to_string())
        }
        (
            _,
            "/healthz"
            | "/v1/graphs"
            | "/v1/solve"
            | "/v1/topk"
            | "/v1/query"
            | "/v1/count"
            | "/v1/internal/solve-range"
            | "/metrics"
            | "/metrics/cluster"
            | "/debug/trace"
            | "/admin/shutdown",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// Whether a path gets deadline-budget attribution and a
/// `/debug/trace` entry.
fn solve_like(path: &str) -> bool {
    matches!(path, "/v1/solve" | "/v1/topk" | "/v1/query" | "/v1/count")
}

/// Retains a solve-like request's trace summary for `/debug/trace`.
fn record_solve_trace(
    state: &AppState,
    req: &Request,
    status: u16,
    trace_id: &Arc<str>,
    elapsed: Duration,
    profile: &Arc<obs::Profile>,
    budget: Option<Budget>,
) {
    let Some(budget) = budget else {
        return;
    };
    let graph = std::str::from_utf8(&req.body)
        .ok()
        .and_then(|t| Json::parse(t).ok())
        .and_then(|b| b.get("graph").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_default();
    state.traces.push(SolveTrace {
        trace_id: trace_id.to_string(),
        endpoint: req.path.clone(),
        graph,
        status,
        dur_us: elapsed.as_micros() as u64,
        resident_at_start: RESIDENCY_AT_START.with(std::cell::Cell::get),
        phases: profile.snapshot(),
        budget,
    });
}

/// The first value of `key` in a raw query string (no percent-decoding;
/// graph names registered through the API are plain identifiers).
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// `GET /debug/trace[?graph=name]`: the most recent solve summaries,
/// newest first.
fn handle_debug_trace(state: &AppState, req: &Request) -> Response {
    let filter = query_param(&req.query, "graph");
    let traces: Vec<Json> = state
        .traces
        .snapshot()
        .iter()
        .filter(|t| filter.is_none_or(|g| t.graph == g))
        .map(SolveTrace::to_json)
        .collect();
    Response::json(
        200,
        Json::obj([
            ("count", Json::Num(traces.len() as f64)),
            ("traces", Json::Arr(traces)),
        ])
        .to_string(),
    )
}

/// `GET /metrics/cluster`: one merged Prometheus page for the whole
/// cluster. The coordinator scrapes each currently-healthy worker's
/// `/metrics`, then [`obs::merge_prometheus`] folds the pages together
/// with its own — counters summed, gauges maxed, histograms merged
/// bucket-wise — and re-renders every constituent series with a `node`
/// label (`node="coordinator"` for the local page). A worker that dies
/// mid-scrape just drops out of this response and bumps the failure
/// counter; staleness gauges record how long ago each worker was last
/// scraped successfully (-1 = never).
fn handle_metrics_cluster(state: &AppState) -> Response {
    let Some(cluster) = &state.cluster else {
        return Response::error(404, "metrics federation requires --role coordinator");
    };
    let mut pages: Vec<(String, String)> = Vec::new();
    for i in cluster.members.healthy() {
        let addr = cluster.members.addr(i).to_string();
        state.metrics.federation_scrapes.inc();
        match crate::client::call(addr.as_str(), "GET", "/metrics", "") {
            Ok((200, text)) => {
                state
                    .federation_seen
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(addr.clone(), Instant::now());
                pages.push((addr, text));
            }
            Ok(_) | Err(_) => state.metrics.federation_scrape_failures.inc(),
        }
    }
    // Refresh staleness gauges for every configured member — including
    // the ones that just failed — before rendering the local page, so
    // they ride along in the merged output.
    let seen = state
        .federation_seen
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    for i in 0..cluster.members.len() {
        let addr = cluster.members.addr(i);
        state
            .metrics
            .registry()
            .gauge_with(
                "mpmb_federation_staleness_seconds",
                "Seconds since this worker's /metrics was last scraped successfully (-1 = never).",
                &[("node", addr)],
            )
            .set(match seen.get(addr) {
                Some(t) => t.elapsed().as_secs() as i64,
                None => -1,
            });
    }
    drop(seen);
    pages.insert(0, ("coordinator".to_string(), state.metrics.render()));
    Response::metrics_text(obs::merge_prometheus(&pages))
}

fn handle_healthz(state: &AppState) -> Response {
    Response::json(
        200,
        Json::obj([
            ("status", Json::Str("ok".to_string())),
            ("graphs", Json::Num(state.registry.len() as f64)),
            ("draining", Json::Bool(state.shutting_down())),
        ])
        .to_string(),
    )
}

fn graph_summary(name: &str, handle: &crate::registry::GraphHandle) -> Json {
    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("left", Json::Num(handle.num_left() as f64)),
        ("right", Json::Num(handle.num_right() as f64)),
        ("edges", Json::Num(handle.num_edges() as f64)),
        ("source", Json::Str(handle.source.clone())),
        ("backing", Json::Str(handle.backing_name().to_string())),
        ("resident", Json::Bool(handle.is_resident())),
        ("resident_bytes", Json::Num(handle.resident_bytes() as f64)),
    ])
}

fn handle_list_graphs(state: &AppState) -> Response {
    let graphs: Vec<Json> = state
        .registry
        .list()
        .iter()
        .map(|(name, handle)| graph_summary(name, handle))
        .collect();
    Response::json(
        200,
        Json::obj([
            ("graphs", Json::Arr(graphs)),
            ("max_threads", Json::Num(state.solver_thread_cap as f64)),
        ])
        .to_string(),
    )
}

fn handle_register_graph(state: &AppState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let name = match body.get("name").and_then(Json::as_str) {
        Some(n) => n,
        None => return Response::error(400, "missing string field `name`"),
    };
    // Either an explicit `spec`, a `path` shorthand, or dataset fields.
    let spec = if let Some(s) = body.get("spec").and_then(Json::as_str) {
        s.to_string()
    } else if let Some(p) = body.get("path").and_then(Json::as_str) {
        p.to_string()
    } else if let Some(d) = body.get("dataset").and_then(Json::as_str) {
        let scale = body.get("scale").and_then(Json::as_f64).unwrap_or(0.01);
        let seed = body.get("seed").and_then(Json::as_u64).unwrap_or(0);
        format!("dataset:{d}:{scale}:{seed}")
    } else {
        return Response::error(400, "provide `spec`, `path`, or `dataset`");
    };
    // Container registrations are pinned to the file's content
    // checksum: a worker (or this node, on eviction reload) refuses to
    // serve different bytes than the ones registered. The checksum
    // travels as a hex string — JSON numbers here are f64-backed and
    // would corrupt the high bits.
    let expected = body
        .get("container_checksum")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .or_else(|| bigraph::storage::peek_container_checksum(std::path::Path::new(&spec)));
    // Coordinator: every worker must hold the graph before ranges can
    // scatter, so registration reaches the workers first. A worker
    // that already has it answers 409, which counts as success; a
    // worker that fails turns the whole request into a 502 and the
    // client retries the registration as a unit.
    if let Some(cluster) = &state.cluster {
        let wire = match expected {
            // Re-serialize with the checksum spliced in, so workers
            // attach the same container bytes the coordinator saw.
            Some(sum) if body.get("container_checksum").is_none() => {
                let mut fields = match &body {
                    Json::Obj(fields) => fields.clone(),
                    _ => Vec::new(),
                };
                fields.push((
                    "container_checksum".to_string(),
                    Json::Str(format!("{sum:016x}")),
                ));
                Json::Obj(fields).to_string().into_bytes()
            }
            _ => req.body.clone(),
        };
        if let Err(e) = cluster::coordinator::broadcast_register(cluster, &wire) {
            return cluster_error_response(&e);
        }
    }
    match state.registry.load_with_expected(name, &spec, expected) {
        Ok(handle) => Response::json(200, graph_summary(name, &handle).to_string()),
        Err(RegistryError::Exists(_)) => {
            Response::error(409, &format!("graph `{name}` already registered"))
        }
        Err(e) => Response::error(400, &e.to_string()),
    }
}

/// `/v1/solve` and `/v1/topk` share everything except result shaping.
#[derive(Clone, Copy, PartialEq)]
enum SolveMode {
    Solve,
    TopK,
}

fn handle_solve(state: &AppState, req: &Request, mode: SolveMode) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let (name, entry) = match lookup_graph(state, &body) {
        Ok(ge) => ge,
        Err(resp) => return resp,
    };
    let graph = match materialize_graph(state, &entry) {
        Ok(g) => g,
        Err(resp) => return resp,
    };
    let method = body
        .get("method")
        .and_then(Json::as_str)
        .unwrap_or("os")
        .to_string();
    let trials = body.get("trials").and_then(Json::as_u64).unwrap_or(20_000);
    let prep = body.get("prep").and_then(Json::as_u64).unwrap_or(100);
    let seed = body.get("seed").and_then(Json::as_u64).unwrap_or(0x5EED);
    let threads = match solver_threads(state, &body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let k = body.get("k").and_then(Json::as_u64).unwrap_or(match mode {
        SolveMode::Solve => 0,
        SolveMode::TopK => 5,
    }) as usize;
    let max_shared = body.get("max_shared").and_then(Json::as_u64);
    if trials == 0 || (matches!(method.as_str(), "ols" | "ols-kl") && prep == 0) {
        return Response::error(400, "trials and prep must be positive");
    }
    if method == "fast" {
        if mode == SolveMode::TopK {
            return Response::error(
                400,
                "method `fast` estimates the expected count, not a butterfly ranking",
            );
        }
        return handle_fast_solve(
            state, &name, &graph, &body, trials, prep, seed, threads, k, max_shared,
        );
    }

    // Thread count is excluded: parallel runs are bit-identical.
    let key = format!(
        "{}|{name}|{method}|{trials}|{prep}|{seed}|{k}|{max_shared:?}",
        if mode == SolveMode::TopK {
            "topk"
        } else {
            "solve"
        },
    );
    let prior = match lookup_cache(state, &key) {
        CacheLookup::Complete(hit) => return Response::json(200, hit),
        CacheLookup::Partial(p) => Some(p),
        CacheLookup::Miss => None,
    };

    let cancel = Cancel::at(state.timeout.map(|t| Instant::now() + t));
    let progress = match &state.cluster {
        Some(cluster) => match cluster::coordinator::advance_cluster_solve(
            state, cluster, &name, &graph, &method, trials, prep, seed, threads, prior, &cancel,
        ) {
            Ok(p) => p,
            Err(e) => return cluster_error_response(&e),
        },
        None => {
            match solve::advance_solve(&graph, &method, trials, prep, seed, threads, prior, &cancel)
            {
                Ok(p) => p,
                Err(msg) => return Response::error(400, &msg),
            }
        }
    };
    state.metrics.trials_executed.add(progress.executed);
    let distribution = match progress.outcome {
        Outcome::Done(d) => d,
        Outcome::Incomplete(partial) => {
            return deadline_response(
                state,
                &key,
                partial,
                progress.trials_done,
                progress.trials_requested,
            );
        }
    };

    let body = solve_body(
        &name,
        &method,
        seed,
        progress.trials_requested,
        progress.trials_done,
        &distribution,
        mode,
        k,
        max_shared,
    );
    state.cache.put_complete(&key, &body);
    Response::json(200, body)
}

/// The completed solve/topk response body. Shared by [`handle_solve`]
/// and the fast tier's escalation path, so an escalation-completed
/// exact answer replays byte-identical to a directly-served one.
#[allow(clippy::too_many_arguments)]
fn solve_body(
    name: &str,
    method: &str,
    seed: u64,
    trials_requested: u64,
    trials_done: u64,
    distribution: &Distribution,
    mode: SolveMode,
    k: usize,
    max_shared: Option<u64>,
) -> String {
    let mut fields = vec![
        ("graph".to_string(), Json::Str(name.to_string())),
        ("method".to_string(), Json::Str(method.to_string())),
        ("seed".to_string(), Json::Num(seed as f64)),
        (
            "trials_requested".to_string(),
            Json::Num(trials_requested as f64),
        ),
        ("trials_done".to_string(), Json::Num(trials_done as f64)),
        ("support".to_string(), Json::Num(distribution.len() as f64)),
    ];
    match mode {
        SolveMode::Solve => {
            fields.push(("mpmb".to_string(), mpmb_json(distribution)));
            if k > 0 {
                fields.push(("top".to_string(), top_json(distribution, k, max_shared)));
            }
        }
        SolveMode::TopK => {
            fields.push(("k".to_string(), Json::Num(k as f64)));
            fields.push(("top".to_string(), top_json(distribution, k, max_shared)));
        }
    }
    Json::Obj(fields).to_string()
}

/// Runs (or resumes) one fast-tier estimate: cache lookup, dispatch
/// (cluster or local), deadline handling, and the per-answer fast
/// metrics. `Err` carries the response to send directly — a complete
/// cache replay, a 503 with the partial cached, or a 4xx/5xx.
#[allow(clippy::too_many_arguments)]
fn run_fast(
    state: &AppState,
    key: &str,
    name: &str,
    graph: &bigraph::UncertainBipartiteGraph,
    trials: u64,
    seed: u64,
    delta: f64,
    threads: usize,
    deadline: Option<Instant>,
) -> Result<(mpmb_core::FastEstimate, u64, u64), Response> {
    let prior = match lookup_cache(state, key) {
        CacheLookup::Complete(hit) => return Err(Response::json(200, hit)),
        CacheLookup::Partial(p) => Some(p),
        CacheLookup::Miss => None,
    };
    let cancel = Cancel::at(deadline);
    let progress = match &state.cluster {
        Some(cluster) => cluster::coordinator::advance_cluster_fast(
            state, cluster, name, graph, trials, seed, delta, threads, prior, &cancel,
        )
        .map_err(|e| cluster_error_response(&e))?,
        None => solve::advance_fast(graph, trials, seed, delta, threads, prior, &cancel)
            .map_err(|msg| Response::error(400, &msg))?,
    };
    state.metrics.trials_executed.add(progress.executed);
    match progress.outcome {
        Outcome::Done(est) => {
            state.metrics.fast_requests.inc();
            state
                .metrics
                .fast_relative_error
                .observe(est.relative_error);
            Ok((est, progress.trials_done, progress.trials_requested))
        }
        Outcome::Incomplete(partial) => Err(deadline_response(
            state,
            key,
            partial,
            progress.trials_done,
            progress.trials_requested,
        )),
    }
}

/// `method=fast` on `/v1/solve`: a sublinear count estimate with a
/// certified (1-delta) confidence interval, answered within the
/// deadline the exact tiers would blow. With `--fast-escalate`, an
/// answer whose CI misses the requested relative error seeds the
/// exact os partial under the os cache key before returning.
#[allow(clippy::too_many_arguments)]
fn handle_fast_solve(
    state: &AppState,
    name: &str,
    graph: &bigraph::UncertainBipartiteGraph,
    body: &Json,
    trials: u64,
    prep: u64,
    seed: u64,
    threads: usize,
    k: usize,
    max_shared: Option<u64>,
) -> Response {
    let delta = body.get("delta").and_then(Json::as_f64).unwrap_or(0.05);
    if !(delta > 0.0 && delta < 1.0) {
        return Response::error(400, "delta must be in (0, 1)");
    }
    let epsilon = body.get("epsilon").and_then(Json::as_f64).unwrap_or(0.05);
    if epsilon <= 0.0 || epsilon.is_nan() {
        return Response::error(400, "epsilon must be positive");
    }
    let key = format!("fast|{name}|{trials}|{seed}|{delta}");
    let deadline = state.timeout.map(|t| Instant::now() + t);
    let (est, trials_done, trials_requested) = match run_fast(
        state, &key, name, graph, trials, seed, delta, threads, deadline,
    ) {
        Ok(done) => done,
        Err(resp) => return resp,
    };
    let half_width = est.ci_high - est.estimate;
    let escalate =
        state.fast_escalate && mpmb_core::fast_escalation_needed(est.estimate, half_width, epsilon);
    if escalate {
        state.metrics.fast_escalations.inc();
        escalate_to_exact(
            state, name, graph, trials, prep, seed, threads, k, max_shared, deadline,
        );
    }
    let body = Json::obj([
        ("graph", Json::Str(name.to_string())),
        ("method", Json::Str("fast".to_string())),
        ("seed", Json::Num(seed as f64)),
        ("delta", Json::Num(delta)),
        ("epsilon", Json::Num(epsilon)),
        ("trials_requested", Json::Num(trials_requested as f64)),
        ("trials_done", Json::Num(trials_done as f64)),
        ("estimate", Json::Num(est.estimate)),
        ("variance", Json::Num(est.variance)),
        ("ci_low", Json::Num(est.ci_low)),
        ("ci_high", Json::Num(est.ci_high)),
        ("relative_error", Json::Num(est.relative_error)),
        ("escalated", Json::Bool(escalate)),
    ])
    .to_string();
    state.cache.put_complete(&key, &body);
    Response::json(200, body)
}

/// Seeds (or advances) the exact os-tier partial behind a fast answer,
/// spending whatever is left of the request's deadline. A completed
/// escalation caches the finished os body — built by the same
/// [`solve_body`] the os handler uses, so a `method=os` retry replays
/// bytes identical to a direct run; an interrupted one caches the
/// partial, so the retry resumes instead of restarting. Best-effort:
/// errors leave the cache untouched and the fast answer stands.
#[allow(clippy::too_many_arguments)]
fn escalate_to_exact(
    state: &AppState,
    name: &str,
    graph: &bigraph::UncertainBipartiteGraph,
    trials: u64,
    prep: u64,
    seed: u64,
    threads: usize,
    k: usize,
    max_shared: Option<u64>,
    deadline: Option<Instant>,
) {
    let key = format!("solve|{name}|os|{trials}|{prep}|{seed}|{k}|{max_shared:?}");
    let prior = match state.cache.get(&key) {
        Some(CacheEntry::Complete(_)) => return, // exact answer already cached
        Some(CacheEntry::Partial(p)) => Some(p),
        None => None,
    };
    let cancel = Cancel::at(deadline);
    let result = match &state.cluster {
        Some(cluster) => cluster::coordinator::advance_cluster_solve(
            state, cluster, name, graph, "os", trials, prep, seed, threads, prior, &cancel,
        )
        .map_err(|e| e.to_string()),
        None => solve::advance_solve(graph, "os", trials, prep, seed, threads, prior, &cancel),
    };
    let Ok(progress) = result else { return };
    state.metrics.trials_executed.add(progress.executed);
    match progress.outcome {
        Outcome::Done(distribution) => {
            let body = solve_body(
                name,
                "os",
                seed,
                progress.trials_requested,
                progress.trials_done,
                &distribution,
                SolveMode::Solve,
                k,
                max_shared,
            );
            state.cache.put_complete(&key, &body);
        }
        Outcome::Incomplete(partial) => {
            state.cache.put(&key, CacheEntry::Partial(partial));
        }
    }
}

/// Maps a cluster failure onto the HTTP edge: caller mistakes are
/// 400s, a fully-down worker set is a retryable 503, and worker
/// misbehavior (wrong graph set, protocol violations) is a 502 — the
/// coordinator is fine, its upstream is not.
fn cluster_error_response(e: &ClusterError) -> Response {
    match e {
        ClusterError::BadRequest(msg) => Response::error(400, msg),
        ClusterError::NoWorkers => {
            Response::error(503, &e.to_string()).with_header("Retry-After", "1")
        }
        ClusterError::Worker { .. } | ClusterError::Protocol(_) => {
            Response::error(502, &e.to_string())
        }
    }
}

/// What a cache lookup resolved to, with the metrics already recorded.
enum CacheLookup {
    /// Finished body to replay (a cache hit).
    Complete(String),
    /// A resumable partial: this request refines it.
    Partial(PartialState),
    /// Nothing cached.
    Miss,
}

fn lookup_cache(state: &AppState, key: &str) -> CacheLookup {
    match state.cache.get(key) {
        Some(CacheEntry::Complete(body)) => {
            state.metrics.cache_hits.inc();
            CacheLookup::Complete(body)
        }
        Some(CacheEntry::Partial(p)) => {
            state.metrics.cache_refined.inc();
            CacheLookup::Partial(p)
        }
        None => {
            state.metrics.cache_misses.inc();
            CacheLookup::Miss
        }
    }
}

/// Records the 503, caching the partial so the next identical request
/// resumes from `trials_done` instead of trial zero.
fn deadline_response(
    state: &AppState,
    key: &str,
    partial: PartialState,
    trials_done: u64,
    trials_requested: u64,
) -> Response {
    state.metrics.deadline_exceeded.inc();
    state.cache.put(key, CacheEntry::Partial(partial));
    // Retry-After 0: the partial is already cached, so an immediate
    // retry resumes from `trials_done` — no point making clients wait.
    Response::json(
        503,
        Json::obj([
            ("error", Json::Str("deadline exceeded".to_string())),
            ("trials_done", Json::Num(trials_done as f64)),
            ("trials_requested", Json::Num(trials_requested as f64)),
        ])
        .to_string(),
    )
    .with_header("Retry-After", "0")
}

fn handle_query(state: &AppState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let (name, entry) = match lookup_graph(state, &body) {
        Ok(ge) => ge,
        Err(resp) => return resp,
    };
    let graph = match materialize_graph(state, &entry) {
        Ok(g) => g,
        Err(resp) => return resp,
    };
    let b = match butterfly_field(&body) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let trials = body.get("trials").and_then(Json::as_u64).unwrap_or(20_000);
    let seed = body.get("seed").and_then(Json::as_u64).unwrap_or(0x5EED);
    if trials == 0 {
        return Response::error(400, "trials must be positive");
    }

    let key = format!("query|{name}|{b}|{trials}|{seed}");
    let prior = match lookup_cache(state, &key) {
        CacheLookup::Complete(hit) => return Response::json(200, hit),
        CacheLookup::Partial(p) => Some(p),
        CacheLookup::Miss => None,
    };

    let cancel = Cancel::at(state.timeout.map(|t| Instant::now() + t));
    let progress = match solve::advance_query(&graph, &b, trials, seed, prior, &cancel) {
        Some(Ok(p)) => p,
        Some(Err(msg)) => return Response::error(400, &msg),
        None => return Response::error(404, "butterfly is not in the graph's backbone"),
    };
    state.metrics.trials_executed.add(progress.executed);
    let q = match progress.outcome {
        Outcome::Done(q) => q,
        Outcome::Incomplete(partial) => {
            return deadline_response(
                state,
                &key,
                partial,
                progress.trials_done,
                progress.trials_requested,
            );
        }
    };
    let body = Json::obj([
        ("graph", Json::Str(name)),
        ("butterfly", butterfly_json(&b)),
        ("existence_prob", Json::Num(q.existence_prob)),
        ("conditional_max_prob", Json::Num(q.conditional_max_prob)),
        ("prob", Json::Num(q.prob)),
        ("trials", Json::Num(q.trials as f64)),
    ])
    .to_string();
    state.cache.put_complete(&key, &body);
    Response::json(200, body)
}

fn handle_count(state: &AppState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let (name, entry) = match lookup_graph(state, &body) {
        Ok(ge) => ge,
        Err(resp) => return resp,
    };
    let graph = match materialize_graph(state, &entry) {
        Ok(g) => g,
        Err(resp) => return resp,
    };
    let trials = body.get("trials").and_then(Json::as_u64).unwrap_or(2_000);
    let seed = body.get("seed").and_then(Json::as_u64).unwrap_or(0x5EED);
    let threads = match solver_threads(state, &body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    if trials == 0 {
        return Response::error(400, "trials must be positive");
    }
    match body.get("method").and_then(Json::as_str).unwrap_or("exact") {
        "exact" => {}
        "fast" => return handle_fast_count(state, &name, &graph, &body, trials, seed, threads),
        other => {
            return Response::error(
                400,
                &format!("unknown method `{other}` (expected exact|fast)"),
            )
        }
    }

    // Thread count is excluded: parallel runs are bit-identical.
    let key = format!("count|{name}|{trials}|{seed}");
    let prior = match lookup_cache(state, &key) {
        CacheLookup::Complete(hit) => return Response::json(200, hit),
        CacheLookup::Partial(p) => Some(p),
        CacheLookup::Miss => None,
    };

    let cancel = Cancel::at(state.timeout.map(|t| Instant::now() + t));
    let progress = match &state.cluster {
        Some(cluster) => match cluster::coordinator::advance_cluster_count(
            state, cluster, &name, &graph, trials, seed, threads, prior, &cancel,
        ) {
            Ok(p) => p,
            Err(e) => return cluster_error_response(&e),
        },
        None => match solve::advance_count(&graph, trials, seed, threads, prior, &cancel) {
            Ok(p) => p,
            Err(msg) => return Response::error(400, &msg),
        },
    };
    state.metrics.trials_executed.add(progress.executed);
    let dist = match progress.outcome {
        Outcome::Done(d) => d,
        Outcome::Incomplete(partial) => {
            return deadline_response(
                state,
                &key,
                partial,
                progress.trials_done,
                progress.trials_requested,
            );
        }
    };
    let body = Json::obj([
        ("graph", Json::Str(name)),
        ("mean", Json::Num(dist.mean)),
        ("variance", Json::Num(dist.variance)),
        ("trials", Json::Num(dist.trials as f64)),
        ("distinct_counts", Json::Num(dist.histogram.len() as f64)),
    ])
    .to_string();
    state.cache.put_complete(&key, &body);
    Response::json(200, body)
}

/// `method=fast` on `/v1/count`: the same sublinear estimate as the
/// fast solve tier (and the same cache namespace — only the response
/// shape differs), without the escalation policy: `/v1/count`'s exact
/// tier is the sampling distribution, not the os solver.
fn handle_fast_count(
    state: &AppState,
    name: &str,
    graph: &bigraph::UncertainBipartiteGraph,
    body: &Json,
    trials: u64,
    seed: u64,
    threads: usize,
) -> Response {
    let delta = body.get("delta").and_then(Json::as_f64).unwrap_or(0.05);
    if !(delta > 0.0 && delta < 1.0) {
        return Response::error(400, "delta must be in (0, 1)");
    }
    let key = format!("count-fast|{name}|{trials}|{seed}|{delta}");
    let deadline = state.timeout.map(|t| Instant::now() + t);
    let (est, trials_done, trials_requested) = match run_fast(
        state, &key, name, graph, trials, seed, delta, threads, deadline,
    ) {
        Ok(done) => done,
        Err(resp) => return resp,
    };
    let body = Json::obj([
        ("graph", Json::Str(name.to_string())),
        ("method", Json::Str("fast".to_string())),
        ("seed", Json::Num(seed as f64)),
        ("delta", Json::Num(delta)),
        ("trials_requested", Json::Num(trials_requested as f64)),
        ("trials_done", Json::Num(trials_done as f64)),
        ("estimate", Json::Num(est.estimate)),
        ("variance", Json::Num(est.variance)),
        ("ci_low", Json::Num(est.ci_low)),
        ("ci_high", Json::Num(est.ci_high)),
        ("relative_error", Json::Num(est.relative_error)),
    ])
    .to_string();
    state.cache.put_complete(&key, &body);
    Response::json(200, body)
}

// --- small shared helpers -------------------------------------------------

/// Validates the request-body `threads` field against the server's cap.
/// Absent means 1; zero or above-cap values are 400s, with the cap
/// reported in the error body so clients can self-correct.
fn solver_threads(state: &AppState, body: &Json) -> Result<usize, Response> {
    let cap = state.solver_thread_cap;
    match body.get("threads").and_then(Json::as_u64) {
        None => Ok(1),
        Some(0) => Err(Response::json(
            400,
            Json::obj([
                ("error", Json::Str("threads must be at least 1".to_string())),
                ("max_threads", Json::Num(cap as f64)),
            ])
            .to_string(),
        )),
        Some(t) if t > cap as u64 => Err(Response::json(
            400,
            Json::obj([
                (
                    "error",
                    Json::Str(format!("threads {t} exceeds this server's limit of {cap}")),
                ),
                ("max_threads", Json::Num(cap as f64)),
                ("requested", Json::Num(t as f64)),
            ])
            .to_string(),
        )),
        Some(t) => Ok(t as usize),
    }
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(Response::error(400, "empty JSON body"));
    }
    Json::parse(text).map_err(|e| Response::error(400, &format!("bad JSON: {e}")))
}

fn lookup_graph(
    state: &AppState,
    body: &Json,
) -> Result<(String, Arc<crate::registry::GraphHandle>), Response> {
    let name = body
        .get("graph")
        .and_then(Json::as_str)
        .ok_or_else(|| Response::error(400, "missing string field `graph`"))?;
    match state.registry.get(name) {
        Some(handle) => Ok((name.to_string(), handle)),
        None => Err(Response::error(
            404,
            &format!("graph `{name}` is not registered"),
        )),
    }
}

fn butterfly_field(body: &Json) -> Result<Butterfly, Response> {
    let arr = body
        .get("butterfly")
        .and_then(Json::as_arr)
        .ok_or_else(|| Response::error(400, "missing field `butterfly` ([u1,u2,v1,v2])"))?;
    if arr.len() != 4 {
        return Err(Response::error(400, "`butterfly` must be [u1,u2,v1,v2]"));
    }
    let mut ids = [0u32; 4];
    for (i, v) in arr.iter().enumerate() {
        ids[i] = v
            .as_u64()
            .filter(|&x| x <= u32::MAX as u64)
            .ok_or_else(|| Response::error(400, "`butterfly` entries must be vertex ids"))?
            as u32;
    }
    if ids[0] == ids[1] || ids[2] == ids[3] {
        return Err(Response::error(
            400,
            "`butterfly` vertices must be distinct per side",
        ));
    }
    Ok(Butterfly::new(
        bigraph::Left(ids[0]),
        bigraph::Left(ids[1]),
        bigraph::Right(ids[2]),
        bigraph::Right(ids[3]),
    ))
}

fn butterfly_json(b: &Butterfly) -> Json {
    Json::Arr(vec![
        Json::Num(b.u1.0 as f64),
        Json::Num(b.u2.0 as f64),
        Json::Num(b.v1.0 as f64),
        Json::Num(b.v2.0 as f64),
    ])
}

fn mpmb_json(dist: &Distribution) -> Json {
    match dist.mpmb() {
        None => Json::Null,
        Some((b, p)) => Json::obj([("butterfly", butterfly_json(&b)), ("prob", Json::Num(p))]),
    }
}

fn top_json(dist: &Distribution, k: usize, max_shared: Option<u64>) -> Json {
    let pairs = match max_shared {
        Some(m) => mpmb_core::top_k_diverse(dist, k, m.min(4) as usize),
        None => dist.top_k(k),
    };
    Json::Arr(
        pairs
            .iter()
            .map(|(b, p)| Json::obj([("butterfly", butterfly_json(b)), ("prob", Json::Num(*p))]))
            .collect(),
    )
}
