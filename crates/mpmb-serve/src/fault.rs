//! Deterministic fault injection for the server's request path.
//!
//! A [`FaultPlan`] decides, per eligible request, whether to drop the
//! connection before answering, dribble the response out slowly, cut
//! the body short, or panic inside the worker. Decisions are a pure
//! function of `(seed, request ordinal)` — a splitmix64 hash mapped to
//! `[0,1)` against cumulative rates — so a given seed produces the same
//! multiset of faults run after run, which is what lets the e2e tests
//! assert "every request completed despite the plan".
//!
//! Observability endpoints (`GET /metrics`, `GET /healthz`) are exempt:
//! tests and operators must be able to watch a deliberately-faulty
//! server without the watching itself being faulted.
//!
//! Plans come from `--fault-plan` or the `MPMB_FAULT_PLAN` environment
//! variable, as a comma-separated spec:
//!
//! ```text
//! seed=7,reset=0.1,slow=0.05,partial=0.05,panic=0.01,panic_at=3
//! ```
//!
//! Rates are probabilities in `[0,1]` summing to at most 1; `panic_at`
//! forces exactly one panic on the Nth eligible request (0-based), on
//! top of the probabilistic rates.

use crate::http::{render_head, Response};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What to do to one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Drop the connection without writing a response.
    Reset,
    /// Write the response in small chunks with delays.
    SlowWrite,
    /// Write the head and only half the body, then close.
    PartialBody,
    /// Panic inside the worker (must be caught per-connection).
    Panic,
}

/// A seeded fault schedule. One instance per server; the ordinal
/// counter makes decisions across workers collision-free.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    reset: f64,
    slow: f64,
    partial: f64,
    panic: f64,
    panic_at: Option<u64>,
    ordinal: AtomicU64,
}

impl FaultPlan {
    /// Parses a `key=value,...` spec. Unknown keys and out-of-range
    /// rates are errors — a typo must not silently disable the plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: 0,
            reset: 0.0,
            slow: 0.0,
            partial: 0.0,
            panic: 0.0,
            panic_at: None,
            ordinal: AtomicU64::new(0),
        };
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("bad fault rate `{v}` for `{key}`"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault rate `{key}={r}` out of [0,1]"));
                }
                Ok(r)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("bad fault-plan seed `{value}`"))?
                }
                "reset" => plan.reset = rate(value)?,
                "slow" => plan.slow = rate(value)?,
                "partial" => plan.partial = rate(value)?,
                "panic" => plan.panic = rate(value)?,
                "panic_at" => {
                    plan.panic_at = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad panic_at `{value}`"))?,
                    )
                }
                other => return Err(format!("unknown fault-plan key `{other}`")),
            }
        }
        if plan.reset + plan.slow + plan.partial + plan.panic > 1.0 {
            return Err("fault rates sum to more than 1".to_string());
        }
        Ok(plan)
    }

    /// Whether a request path participates in fault injection.
    fn eligible(method: &str, path: &str) -> bool {
        !(method == "GET" && matches!(path, "/metrics" | "/healthz"))
    }

    /// Draws the action (if any) for the next eligible request.
    pub fn decide(&self, method: &str, path: &str) -> Option<FaultAction> {
        if !Self::eligible(method, path) {
            return None;
        }
        let ordinal = self.ordinal.fetch_add(1, Ordering::Relaxed);
        if self.panic_at == Some(ordinal) {
            return Some(FaultAction::Panic);
        }
        // splitmix64 of (seed, ordinal) → uniform in [0,1).
        let u = (splitmix64(self.seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 11) as f64
            / (1u64 << 53) as f64;
        let mut edge = self.reset;
        if u < edge {
            return Some(FaultAction::Reset);
        }
        edge += self.slow;
        if u < edge {
            return Some(FaultAction::SlowWrite);
        }
        edge += self.partial;
        if u < edge {
            return Some(FaultAction::PartialBody);
        }
        edge += self.panic;
        if u < edge {
            return Some(FaultAction::Panic);
        }
        None
    }
}

/// The splitmix64 mix, shared with the retry client's jitter.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Chunks a slow-write response into this many pieces.
const SLOW_CHUNKS: usize = 8;
/// Delay between slow-write chunks. Total added latency stays well
/// under a retrying client's patience but far above a normal write.
const SLOW_CHUNK_DELAY: Duration = Duration::from_millis(5);

/// Writes `resp` under `action`'s degradation. Returns `Ok(true)` if
/// the connection is still usable afterwards, `Ok(false)` if the fault
/// requires closing it (partial bodies must not be followed by another
/// response the client could misparse).
pub fn write_degraded(
    stream: &mut TcpStream,
    resp: &Response,
    close: bool,
    action: FaultAction,
) -> std::io::Result<bool> {
    match action {
        FaultAction::Reset | FaultAction::Panic => Ok(false), // handled by the caller
        FaultAction::SlowWrite => {
            let mut bytes = render_head(resp, close).into_bytes();
            bytes.extend_from_slice(&resp.body);
            let chunk = bytes.len().div_ceil(SLOW_CHUNKS).max(1);
            for piece in bytes.chunks(chunk) {
                stream.write_all(piece)?;
                stream.flush()?;
                std::thread::sleep(SLOW_CHUNK_DELAY);
            }
            Ok(!close)
        }
        FaultAction::PartialBody => {
            stream.write_all(render_head(resp, close).as_bytes())?;
            stream.write_all(&resp.body[..resp.body.len() / 2])?;
            stream.flush()?;
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("seed=7,reset=0.1,slow=0.2,partial=0.05,panic=0.01,panic_at=3")
            .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.panic_at, Some(3));
        assert_eq!(p.reset, 0.1);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("reset").is_err());
        assert!(FaultPlan::parse("reset=2.0").is_err());
        assert!(FaultPlan::parse("reset=-0.5").is_err());
        assert!(FaultPlan::parse("unknown=1").is_err());
        assert!(FaultPlan::parse("reset=0.6,slow=0.6").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
    }

    #[test]
    fn empty_spec_never_faults() {
        let p = FaultPlan::parse("").unwrap();
        for _ in 0..1_000 {
            assert_eq!(p.decide("POST", "/v1/solve"), None);
        }
    }

    #[test]
    fn observability_paths_are_exempt_and_do_not_consume_ordinals() {
        let p = FaultPlan::parse("seed=1,panic_at=0").unwrap();
        assert_eq!(p.decide("GET", "/metrics"), None);
        assert_eq!(p.decide("GET", "/healthz"), None);
        // The first eligible request still draws ordinal 0.
        assert_eq!(p.decide("POST", "/v1/solve"), Some(FaultAction::Panic));
    }

    #[test]
    fn panic_at_fires_exactly_once() {
        let p = FaultPlan::parse("seed=1,panic_at=2").unwrap();
        let actions: Vec<_> = (0..6).map(|_| p.decide("POST", "/v1/solve")).collect();
        assert_eq!(actions[2], Some(FaultAction::Panic));
        assert_eq!(
            actions
                .iter()
                .filter(|a| **a == Some(FaultAction::Panic))
                .count(),
            1
        );
    }

    #[test]
    fn rates_are_deterministic_and_roughly_calibrated() {
        let draw = |seed: u64| -> (u64, u64, u64, u64) {
            let p = FaultPlan::parse(&format!(
                "seed={seed},reset=0.2,slow=0.1,partial=0.1,panic=0.05"
            ))
            .unwrap();
            let (mut r, mut s, mut pa, mut pn) = (0u64, 0u64, 0u64, 0u64);
            for _ in 0..10_000 {
                match p.decide("POST", "/v1/solve") {
                    Some(FaultAction::Reset) => r += 1,
                    Some(FaultAction::SlowWrite) => s += 1,
                    Some(FaultAction::PartialBody) => pa += 1,
                    Some(FaultAction::Panic) => pn += 1,
                    None => {}
                }
            }
            (r, s, pa, pn)
        };
        let first = draw(42);
        assert_eq!(first, draw(42), "same seed, same schedule");
        assert_ne!(first, draw(43), "different seed, different schedule");
        let (r, s, pa, pn) = first;
        assert!((1_500..2_500).contains(&r), "reset rate off: {r}");
        assert!((600..1_400).contains(&s), "slow rate off: {s}");
        assert!((600..1_400).contains(&pa), "partial rate off: {pa}");
        assert!((250..750).contains(&pn), "panic rate off: {pn}");
    }
}
