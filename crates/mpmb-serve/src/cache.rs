//! Deterministic result cache.
//!
//! Every solver in `mpmb-core` is a pure function of `(graph, method,
//! trials, seed, …)` — parallel runners are bit-identical to sequential
//! ones — so a finished response body can be replayed verbatim for a
//! repeated request. Keys are canonical strings built by the handlers
//! from every determinism-relevant parameter; thread counts are
//! deliberately *excluded* because they do not affect results.
//!
//! Plain LRU under one mutex. Capacity is entry-count based; bodies are
//! small JSON documents, so byte accounting isn't worth the bookkeeping.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// LRU cache from canonical request key to rendered response body.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

struct Inner {
    map: HashMap<String, String>,
    /// Keys from least- to most-recently used.
    order: VecDeque<String>,
}

impl ResultCache {
    /// A cache holding up to `capacity` responses (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<String> {
        let mut inner = self.inner.lock().unwrap();
        let body = inner.map.get(key)?.clone();
        if let Some(pos) = inner.order.iter().position(|k| k == key) {
            inner.order.remove(pos);
            inner.order.push_back(key.to_string());
        }
        Some(body)
    }

    /// Stores a finished response, evicting the least-recently-used entry
    /// when full. No-op at capacity 0.
    pub fn put(&self, key: &str, body: &str) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if inner
            .map
            .insert(key.to_string(), body.to_string())
            .is_some()
        {
            if let Some(pos) = inner.order.iter().position(|k| k == key) {
                inner.order.remove(pos);
            }
        } else if inner.map.len() > self.capacity {
            if let Some(evicted) = inner.order.pop_front() {
                inner.map.remove(&evicted);
            }
        }
        inner.order.push_back(key.to_string());
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_lru_eviction() {
        let c = ResultCache::new(2);
        assert!(c.get("a").is_none());
        c.put("a", "1");
        c.put("b", "2");
        assert_eq!(c.get("a").as_deref(), Some("1")); // refreshes `a`
        c.put("c", "3"); // evicts `b`, the LRU entry
        assert!(c.get("b").is_none());
        assert_eq!(c.get("a").as_deref(), Some("1"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let c = ResultCache::new(2);
        c.put("a", "1");
        c.put("a", "2");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a").as_deref(), Some("2"));
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ResultCache::new(0);
        c.put("a", "1");
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
    }
}
