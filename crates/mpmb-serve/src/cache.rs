//! Deterministic result cache with partial-result refinement.
//!
//! Every solver in `mpmb-core` is a pure function of `(graph, method,
//! trials, seed, …)` — parallel runs are bit-identical to sequential
//! ones — so a finished response body can be replayed verbatim for a
//! repeated request. Keys are canonical strings built by the handlers
//! from every determinism-relevant parameter; thread counts are
//! deliberately *excluded* because they do not affect results.
//!
//! Entries come in two flavors:
//!
//! * [`CacheEntry::Complete`] — a rendered response body, replayed
//!   verbatim on a hit;
//! * [`CacheEntry::Partial`] — the resumable
//!   [`PartialState`](crate::solve::PartialState) of a request that hit
//!   its deadline. A repeat of the same request *resumes* from it with
//!   a fresh deadline instead of restarting at trial zero, so each 503
//!   carries more trials than the last and the answer eventually
//!   completes — deterministically identical to an uninterrupted run.
//!
//! Plain LRU under one mutex. Capacity is entry-count based; bodies are
//! small JSON documents and partials are bounded by the distribution
//! support, so byte accounting isn't worth the bookkeeping.

use crate::solve::PartialState;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// One cached outcome: a finished body or a resumable partial.
#[derive(Clone)]
pub enum CacheEntry {
    /// Rendered response body of a completed request.
    Complete(String),
    /// Resumable progress of a request that hit its deadline.
    Partial(PartialState),
}

/// LRU cache from canonical request key to [`CacheEntry`].
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

struct Inner {
    map: HashMap<String, CacheEntry>,
    /// Keys from least- to most-recently used.
    order: VecDeque<String>,
}

impl ResultCache {
    /// A cache holding up to `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<CacheEntry> {
        let mut inner = self.lock();
        let entry = inner.map.get(key)?.clone();
        if let Some(pos) = inner.order.iter().position(|k| k == key) {
            inner.order.remove(pos);
            inner.order.push_back(key.to_string());
        }
        Some(entry)
    }

    /// Stores an entry (replacing any previous one — a completed body
    /// overwrites the partial it grew from), evicting the
    /// least-recently-used entry when full. No-op at capacity 0.
    pub fn put(&self, key: &str, entry: CacheEntry) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.map.insert(key.to_string(), entry).is_some() {
            if let Some(pos) = inner.order.iter().position(|k| k == key) {
                inner.order.remove(pos);
            }
        } else if inner.map.len() > self.capacity {
            if let Some(evicted) = inner.order.pop_front() {
                inner.map.remove(&evicted);
            }
        }
        inner.order.push_back(key.to_string());
    }

    /// Stores a finished response body.
    pub fn put_complete(&self, key: &str, body: &str) {
        self.put(key, CacheEntry::Complete(body.to_string()));
    }

    /// Snapshot of every resumable partial, LRU to MRU, for the
    /// checkpoint writer. Complete entries are cheap to recompute from
    /// their partials' trail, so only partials are persisted.
    pub fn partials(&self) -> Vec<(String, PartialState)> {
        let inner = self.lock();
        inner
            .order
            .iter()
            .filter_map(|key| match inner.map.get(key) {
                Some(CacheEntry::Partial(state)) => Some((key.clone(), state.clone())),
                _ => None,
            })
            .collect()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// The inner map, recovering from a poisoned mutex: a worker that
    /// panicked mid-`get`/`put` leaves the LRU bookkeeping at worst
    /// slightly stale, never structurally broken, so serving must keep
    /// going rather than propagate the poison.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get_body(c: &ResultCache, key: &str) -> Option<String> {
        match c.get(key)? {
            CacheEntry::Complete(b) => Some(b),
            CacheEntry::Partial(_) => panic!("expected a complete entry"),
        }
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let c = ResultCache::new(2);
        assert!(c.get("a").is_none());
        c.put_complete("a", "1");
        c.put_complete("b", "2");
        assert_eq!(get_body(&c, "a").as_deref(), Some("1")); // refreshes `a`
        c.put_complete("c", "3"); // evicts `b`, the LRU entry
        assert!(c.get("b").is_none());
        assert_eq!(get_body(&c, "a").as_deref(), Some("1"));
        assert_eq!(get_body(&c, "c").as_deref(), Some("3"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let c = ResultCache::new(2);
        c.put_complete("a", "1");
        c.put_complete("a", "2");
        assert_eq!(c.len(), 1);
        assert_eq!(get_body(&c, "a").as_deref(), Some("2"));
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ResultCache::new(0);
        c.put_complete("a", "1");
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn partial_upgrades_to_complete_in_place() {
        use mpmb_core::{Partial, Tally};
        let c = ResultCache::new(2);
        let partial = PartialState::Os(Partial::empty(Tally::new(), 100));
        c.put("a", CacheEntry::Partial(partial));
        assert!(matches!(c.get("a"), Some(CacheEntry::Partial(_))));
        c.put_complete("a", "done");
        assert_eq!(c.len(), 1);
        assert_eq!(get_body(&c, "a").as_deref(), Some("done"));
    }
}
