//! The graph registry: named graphs, loaded once and shared read-only.
//!
//! Graphs come from two sources, matching the CLI's inputs:
//!
//! * files, via [`bigraph::io::read_auto`] (text edge lists or the
//!   `UBGRAPH1` binary format), and
//! * the synthetic Table III stand-ins in [`datasets`], via a
//!   `dataset:NAME[:scale[:seed]]` spec.
//!
//! Entries are immutable after insertion — solvers only ever read —
//! so lookups hand out `Arc` clones and the lock is held only for the
//! map operation, never during a solve.

use bigraph::UncertainBipartiteGraph;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// One registered graph plus provenance for `/v1/graphs` listings.
pub struct GraphEntry {
    /// The loaded graph.
    pub graph: UncertainBipartiteGraph,
    /// Human-readable origin, e.g. `file:g.txt` or `dataset:abide:0.02:7`.
    pub source: String,
}

/// Named graphs behind a read-mostly lock.
#[derive(Default)]
pub struct Registry {
    graphs: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
}

/// Why a registry operation failed.
#[derive(Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is already registered (registration is insert-only so
    /// cached results can never refer to a replaced graph).
    Exists(String),
    /// The spec could not be parsed or the graph could not be loaded.
    Load(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Exists(name) => write!(f, "graph `{name}` already registered"),
            RegistryError::Load(msg) => write!(f, "{msg}"),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `spec` and registers it under `name`.
    pub fn load(&self, name: &str, spec: &str) -> Result<Arc<GraphEntry>, RegistryError> {
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(RegistryError::Load(format!(
                "invalid graph name `{name}` (use [A-Za-z0-9_-]+)"
            )));
        }
        // Reject duplicates before the (possibly slow) load.
        if self.get(name).is_some() {
            return Err(RegistryError::Exists(name.to_string()));
        }
        let entry = Arc::new(load_spec(spec)?);
        // Poison recovery throughout: the map is a BTree of Arcs, never
        // left mid-edit by a panicking reader, so serving continues
        // after a caught worker panic instead of cascading.
        let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
        // Re-check under the write lock: a racing registration wins.
        if graphs.contains_key(name) {
            return Err(RegistryError::Exists(name.to_string()));
        }
        graphs.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// The entry registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        self.graphs
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// All entries in name order.
    pub fn list(&self) -> Vec<(String, Arc<GraphEntry>)> {
        self.graphs
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, e)| (n.clone(), Arc::clone(e)))
            .collect()
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no graph is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Loads a graph from a spec: a file path, or
/// `dataset:NAME[:scale[:seed]]` with NAME one of the Table III
/// stand-ins (`abide`, `movielens`, `jester`, `protein`).
pub fn load_spec(spec: &str) -> Result<GraphEntry, RegistryError> {
    if let Some(rest) = spec.strip_prefix("dataset:") {
        let mut parts = rest.split(':');
        let name = parts.next().unwrap_or("");
        let scale: f64 = match parts.next() {
            None => 0.01,
            Some(s) => s
                .parse()
                .map_err(|_| RegistryError::Load(format!("bad scale `{s}` in `{spec}`")))?,
        };
        let seed: u64 = match parts.next() {
            None => 0,
            Some(s) => s
                .parse()
                .map_err(|_| RegistryError::Load(format!("bad seed `{s}` in `{spec}`")))?,
        };
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(RegistryError::Load(format!(
                "scale must be in (0,1], got {scale}"
            )));
        }
        let dataset = match name.to_ascii_lowercase().as_str() {
            "abide" => datasets::Dataset::Abide,
            "movielens" => datasets::Dataset::MovieLens,
            "jester" => datasets::Dataset::Jester,
            "protein" => datasets::Dataset::Protein,
            other => {
                return Err(RegistryError::Load(format!(
                    "unknown dataset `{other}` (expected abide|movielens|jester|protein)"
                )))
            }
        };
        Ok(GraphEntry {
            graph: dataset.generate(scale, seed),
            source: format!("dataset:{}:{scale}:{seed}", name.to_ascii_lowercase()),
        })
    } else {
        let graph = bigraph::io::read_auto(std::path::Path::new(spec))
            .map_err(|e| RegistryError::Load(format!("cannot load `{spec}`: {e}")))?;
        Ok(GraphEntry {
            graph,
            source: format!("file:{spec}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_spec_loads_and_lists() {
        let r = Registry::new();
        let e = r.load("tiny", "dataset:abide:0.01:7").unwrap();
        assert!(e.graph.num_edges() > 0);
        assert_eq!(e.source, "dataset:abide:0.01:7");
        assert_eq!(r.list().len(), 1);
        assert!(r.get("tiny").is_some());
        assert!(r.get("absent").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Registry::new();
        r.load("g", "dataset:abide:0.01").unwrap();
        match r.load("g", "dataset:abide:0.01") {
            Err(RegistryError::Exists(n)) => assert_eq!(n, "g"),
            other => panic!("expected Exists, got {:?}", other.err()),
        }
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(load_spec("dataset:nope").is_err());
        assert!(load_spec("dataset:abide:2.0").is_err());
        assert!(load_spec("dataset:abide:0.01:x").is_err());
        assert!(load_spec("/no/such/file.txt").is_err());
        let r = Registry::new();
        assert!(r.load("bad name!", "dataset:abide:0.01").is_err());
    }

    #[test]
    fn defaults_applied() {
        let e = load_spec("dataset:movielens").unwrap();
        assert_eq!(e.source, "dataset:movielens:0.01:0");
    }
}
