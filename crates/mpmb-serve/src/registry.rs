//! The graph registry: named graph *handles* behind a memory budget.
//!
//! Graphs come from three sources, matching the CLI's inputs:
//!
//! * `UBGCONT1` container files ([`bigraph::storage`]) — attached
//!   lazily: registration verifies only the header, and the CSR
//!   sections materialize on first use,
//! * other files, via [`bigraph::io::read_auto`] (text edge lists or
//!   the `UBGRAPH1` binary format) — parsed eagerly and resident for
//!   the registry's lifetime, and
//! * the synthetic Table III stand-ins in [`datasets`], via a
//!   `dataset:NAME[:scale[:seed]]` spec.
//!
//! Every entry is an [`Arc<GraphHandle>`]. A handle hands out
//! `Arc<UncertainBipartiteGraph>` clones through
//! [`Registry::materialize`]; container-backed handles whose graph is
//! not referenced by any in-flight solve can be *evicted* when the
//! registry's residency exceeds `--mem-budget`, and re-materialize on
//! the next request.
//!
//! # Eviction cannot perturb results
//!
//! Three facts make that provable rather than hoped-for:
//!
//! 1. Solvers only ever see fully materialized graphs — a handle
//!    returns an `Arc` to a complete, validated
//!    [`UncertainBipartiteGraph`], never a partially loaded view.
//! 2. A graph is evicted only when its `Arc` strong count proves no
//!    solve holds it, checked under the same mutex that hands out new
//!    clones, so an in-flight solve pins its graph.
//! 3. Re-materialization re-verifies the container's content checksum
//!    against the one recorded at attach time and re-runs the full
//!    structural validation, so the reloaded graph is bit-identical to
//!    the evicted one (proptested in `tests/container_hostility.rs`).

use bigraph::storage::ContainerReader;
use bigraph::UncertainBipartiteGraph;
use obs::{Counter, Gauge};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Why a registry operation failed.
#[derive(Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is already registered (registration is insert-only so
    /// cached results can never refer to a replaced graph).
    Exists(String),
    /// The spec could not be parsed or the graph could not be loaded.
    Load(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Exists(name) => write!(f, "graph `{name}` already registered"),
            RegistryError::Load(msg) => write!(f, "{msg}"),
        }
    }
}

/// Where a handle's bytes live when it is not resident.
enum Backing {
    /// Parsed eagerly (text/binary file or generated dataset); always
    /// resident, never evictable.
    Memory {
        num_left: u64,
        num_right: u64,
        num_edges: u64,
    },
    /// A `UBGCONT1` container on disk; materialized on demand.
    Container {
        path: PathBuf,
        /// Content checksum recorded at attach; re-verified on every
        /// materialization so a swapped file can never silently change
        /// answers between evict and reload.
        checksum: u64,
        num_left: u64,
        num_right: u64,
        num_edges: u64,
    },
}

/// One registered graph: provenance, backing, and the residency slot.
pub struct GraphHandle {
    /// Human-readable origin, e.g. `file:g.ubgc` or `dataset:abide:0.02:7`.
    pub source: String,
    backing: Backing,
    /// The resident graph, if any. All hand-outs and the eviction
    /// decision go through this mutex, which is what makes the
    /// strong-count pinning check race-free.
    resident: Mutex<Option<Arc<UncertainBipartiteGraph>>>,
    /// Cached `resident_bytes()` of the resident graph (0 when
    /// evicted) — lets budget sweeps sum residency without locking
    /// every handle.
    resident_bytes: AtomicU64,
    /// Registry-wide use sequence number at last materialize; the LRU
    /// eviction key.
    last_used: AtomicU64,
    /// `mpmb_graph_resident_bytes{graph=...}`, when metrics are attached.
    gauge: OnceLock<Arc<Gauge>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Poison recovery throughout: the slot is an Option<Arc>, never
    // left mid-edit by a panicking reader.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl GraphHandle {
    fn new_memory(source: String, graph: UncertainBipartiteGraph) -> GraphHandle {
        let bytes = graph.resident_bytes();
        let backing = Backing::Memory {
            num_left: graph.num_left() as u64,
            num_right: graph.num_right() as u64,
            num_edges: graph.num_edges() as u64,
        };
        GraphHandle {
            source,
            backing,
            resident: Mutex::new(Some(Arc::new(graph))),
            resident_bytes: AtomicU64::new(bytes),
            last_used: AtomicU64::new(0),
            gauge: OnceLock::new(),
        }
    }

    fn new_container(source: String, reader: &ContainerReader) -> GraphHandle {
        let meta = reader.meta();
        GraphHandle {
            source,
            backing: Backing::Container {
                path: reader.path().to_path_buf(),
                checksum: reader.content_checksum(),
                num_left: meta.num_left,
                num_right: meta.num_right,
                num_edges: meta.num_edges,
            },
            resident: Mutex::new(None),
            resident_bytes: AtomicU64::new(0),
            last_used: AtomicU64::new(0),
            gauge: OnceLock::new(),
        }
    }

    /// Number of left vertices, known without materializing.
    pub fn num_left(&self) -> u64 {
        match &self.backing {
            Backing::Memory { num_left, .. } | Backing::Container { num_left, .. } => *num_left,
        }
    }

    /// Number of right vertices, known without materializing.
    pub fn num_right(&self) -> u64 {
        match &self.backing {
            Backing::Memory { num_right, .. } | Backing::Container { num_right, .. } => *num_right,
        }
    }

    /// Number of edges, known without materializing.
    pub fn num_edges(&self) -> u64 {
        match &self.backing {
            Backing::Memory { num_edges, .. } | Backing::Container { num_edges, .. } => *num_edges,
        }
    }

    /// `"memory"` or `"container"`, for `/v1/graphs`.
    pub fn backing_name(&self) -> &'static str {
        match &self.backing {
            Backing::Memory { .. } => "memory",
            Backing::Container { .. } => "container",
        }
    }

    /// Whether the graph is currently materialized.
    pub fn is_resident(&self) -> bool {
        lock(&self.resident).is_some()
    }

    /// Bytes of graph arrays currently resident for this handle.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// The container content checksum, for container-backed handles.
    pub fn container_checksum(&self) -> Option<u64> {
        match &self.backing {
            Backing::Container { checksum, .. } => Some(*checksum),
            Backing::Memory { .. } => None,
        }
    }

    /// The container file path, for container-backed handles.
    pub fn container_path(&self) -> Option<&Path> {
        match &self.backing {
            Backing::Container { path, .. } => Some(path),
            Backing::Memory { .. } => None,
        }
    }

    fn set_gauge_bytes(&self, bytes: u64) {
        if let Some(g) = self.gauge.get() {
            g.set(bytes as i64);
        }
    }

    /// Returns the resident graph, materializing the container if
    /// needed. Holds the slot mutex for the whole load so concurrent
    /// requests for the same graph materialize it exactly once.
    fn acquire(
        &self,
        materializations: Option<&Arc<Counter>>,
    ) -> Result<Arc<UncertainBipartiteGraph>, RegistryError> {
        let mut slot = lock(&self.resident);
        if let Some(g) = &*slot {
            return Ok(Arc::clone(g));
        }
        let Backing::Container { path, checksum, .. } = &self.backing else {
            unreachable!("memory-backed handles are always resident");
        };
        let reader = ContainerReader::open(path).map_err(|e| {
            RegistryError::Load(format!("cannot re-attach `{}`: {e}", path.display()))
        })?;
        if reader.content_checksum() != *checksum {
            return Err(RegistryError::Load(format!(
                "container `{}` changed on disk since attach (checksum {:016x} != {:016x}); \
                 refusing to materialize a different graph under the same name",
                path.display(),
                reader.content_checksum(),
                checksum
            )));
        }
        let graph = Arc::new(reader.materialize().map_err(|e| {
            RegistryError::Load(format!("cannot materialize `{}`: {e}", path.display()))
        })?);
        let bytes = graph.resident_bytes();
        self.resident_bytes.store(bytes, Ordering::Relaxed);
        self.set_gauge_bytes(bytes);
        if let Some(c) = materializations {
            c.inc();
        }
        *slot = Some(Arc::clone(&graph));
        Ok(graph)
    }

    /// Drops the resident graph if this handle is container-backed and
    /// no solve holds it. Returns the bytes freed.
    fn try_evict(&self) -> Option<u64> {
        if !matches!(self.backing, Backing::Container { .. }) {
            return None;
        }
        let mut slot = lock(&self.resident);
        let g = slot.as_ref()?;
        // The slot holds one strong reference; more than one means an
        // in-flight solve (or a caller between materialize and solve)
        // still reads this graph — it is pinned. New clones are only
        // handed out under this mutex, so count == 1 cannot race.
        if Arc::strong_count(g) > 1 {
            return None;
        }
        *slot = None;
        let freed = self.resident_bytes.swap(0, Ordering::Relaxed);
        self.set_gauge_bytes(0);
        Some(freed)
    }
}

/// Residency instruments, attached once by the server.
struct ResidencyMetrics {
    obs: Arc<obs::Registry>,
    evictions: Arc<Counter>,
    materializations: Arc<Counter>,
}

/// Named graph handles behind a read-mostly lock, plus the budget
/// enforcement machinery.
#[derive(Default)]
pub struct Registry {
    graphs: RwLock<BTreeMap<String, Arc<GraphHandle>>>,
    /// Residency budget in bytes; 0 disables eviction.
    budget: u64,
    /// Monotonic use counter; each materialize stamps its handle.
    use_seq: AtomicU64,
    metrics: OnceLock<ResidencyMetrics>,
}

impl Registry {
    /// An empty registry with no memory budget (nothing ever evicted).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry that evicts cold container-backed graphs once
    /// residency exceeds `budget` bytes (0 = unlimited).
    pub fn with_budget(budget: u64) -> Self {
        Registry {
            budget,
            ..Self::default()
        }
    }

    /// The configured residency budget in bytes (0 = unlimited).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Wires the residency instruments: per-graph
    /// `mpmb_graph_resident_bytes{graph}` gauges plus the eviction and
    /// materialization counters. Idempotent; handles registered before
    /// attachment get their gauges retroactively.
    pub fn attach_metrics(
        &self,
        obs: &Arc<obs::Registry>,
        evictions: Arc<Counter>,
        materializations: Arc<Counter>,
    ) {
        let _ = self.metrics.set(ResidencyMetrics {
            obs: Arc::clone(obs),
            evictions,
            materializations,
        });
        for (name, handle) in self.list() {
            self.ensure_gauge(&name, &handle);
        }
    }

    fn ensure_gauge(&self, name: &str, handle: &GraphHandle) {
        if let Some(m) = self.metrics.get() {
            let gauge = m.obs.gauge_with(
                "mpmb_graph_resident_bytes",
                "Bytes of graph arrays currently resident, per graph.",
                &[("graph", name)],
            );
            gauge.set(handle.resident_bytes() as i64);
            let _ = handle.gauge.set(gauge);
        }
    }

    /// Loads `spec` and registers it under `name`.
    pub fn load(&self, name: &str, spec: &str) -> Result<Arc<GraphHandle>, RegistryError> {
        self.load_with_expected(name, spec, None)
    }

    /// Loads `spec` under `name`, additionally requiring a
    /// container-backed spec to carry the given content checksum.
    /// Checkpoint restore and cluster registration use this to prove
    /// they re-attached the *same bytes* the manifest or coordinator
    /// recorded.
    pub fn load_with_expected(
        &self,
        name: &str,
        spec: &str,
        expected_checksum: Option<u64>,
    ) -> Result<Arc<GraphHandle>, RegistryError> {
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(RegistryError::Load(format!(
                "invalid graph name `{name}` (use [A-Za-z0-9_-]+)"
            )));
        }
        // Reject duplicates before the (possibly slow) load.
        if self.get(name).is_some() {
            return Err(RegistryError::Exists(name.to_string()));
        }
        let handle = load_spec(spec)?;
        if let Some(expected) = expected_checksum {
            match handle.container_checksum() {
                Some(sum) if sum == expected => {}
                Some(sum) => {
                    return Err(RegistryError::Load(format!(
                        "container `{spec}` has checksum {sum:016x}, expected {expected:016x}"
                    )))
                }
                None => {
                    return Err(RegistryError::Load(format!(
                        "`{spec}` is not a container but a content checksum was required"
                    )))
                }
            }
        }
        let handle = Arc::new(handle);
        {
            let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
            // Re-check under the write lock: a racing registration wins.
            if graphs.contains_key(name) {
                return Err(RegistryError::Exists(name.to_string()));
            }
            graphs.insert(name.to_string(), Arc::clone(&handle));
        }
        self.ensure_gauge(name, &handle);
        // A newly parsed memory-backed graph adds residency; make room.
        self.enforce_budget();
        Ok(handle)
    }

    /// The handle registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<GraphHandle>> {
        self.graphs
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// All handles in name order.
    pub fn list(&self) -> Vec<(String, Arc<GraphHandle>)> {
        self.graphs
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, e)| (n.clone(), Arc::clone(e)))
            .collect()
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no graph is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of resident bytes across all handles.
    pub fn resident_total(&self) -> u64 {
        self.list().iter().map(|(_, h)| h.resident_bytes()).sum()
    }

    /// Returns the resident graph for `handle`, materializing (and
    /// checksum-verifying) a container-backed graph on first use, then
    /// enforces the memory budget. The returned `Arc` pins the graph
    /// against eviction for as long as the caller holds it.
    pub fn materialize(
        &self,
        handle: &Arc<GraphHandle>,
    ) -> Result<Arc<UncertainBipartiteGraph>, RegistryError> {
        handle.last_used.store(
            self.use_seq.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        let graph = handle.acquire(self.metrics.get().map(|m| &m.materializations))?;
        // Enforce after the hand-out: the caller's Arc pins the graph
        // just materialized, so the sweep can only pick colder ones.
        self.enforce_budget();
        Ok(graph)
    }

    /// Evicts cold container-backed graphs (LRU first) until the
    /// enforcement signal fits the budget or no evictable graph
    /// remains. The signal is the larger of the registry's tracked
    /// residency and [`memtrack::live_bytes`] — when the counting
    /// allocator is installed (the `mpmb` binary), real process heap
    /// pressure triggers eviction even if graph arrays alone fit.
    fn enforce_budget(&self) {
        if self.budget == 0 {
            return;
        }
        let handles = self.list();
        let tracked: u64 = handles.iter().map(|(_, h)| h.resident_bytes()).sum();
        let mut pressure = tracked.max(memtrack::live_bytes() as u64);
        if pressure <= self.budget {
            return;
        }
        let mut candidates: Vec<&Arc<GraphHandle>> = handles
            .iter()
            .map(|(_, h)| h)
            .filter(|h| h.backing_name() == "container" && h.resident_bytes() > 0)
            .collect();
        candidates.sort_by_key(|h| h.last_used.load(Ordering::Relaxed));
        for h in candidates {
            if pressure <= self.budget {
                break;
            }
            if let Some(freed) = h.try_evict() {
                pressure = pressure.saturating_sub(freed);
                if let Some(m) = self.metrics.get() {
                    m.evictions.inc();
                }
            }
        }
    }
}

/// Loads a graph handle from a spec: a file path (container files
/// attach lazily, anything else parses eagerly), or
/// `dataset:NAME[:scale[:seed]]` with NAME one of the Table III
/// stand-ins (`abide`, `movielens`, `jester`, `protein`).
pub fn load_spec(spec: &str) -> Result<GraphHandle, RegistryError> {
    if let Some(rest) = spec.strip_prefix("dataset:") {
        let mut parts = rest.split(':');
        let name = parts.next().unwrap_or("");
        let scale: f64 = match parts.next() {
            None => 0.01,
            Some(s) => s
                .parse()
                .map_err(|_| RegistryError::Load(format!("bad scale `{s}` in `{spec}`")))?,
        };
        let seed: u64 = match parts.next() {
            None => 0,
            Some(s) => s
                .parse()
                .map_err(|_| RegistryError::Load(format!("bad seed `{s}` in `{spec}`")))?,
        };
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(RegistryError::Load(format!(
                "scale must be in (0,1], got {scale}"
            )));
        }
        let dataset = match name.to_ascii_lowercase().as_str() {
            "abide" => datasets::Dataset::Abide,
            "movielens" => datasets::Dataset::MovieLens,
            "jester" => datasets::Dataset::Jester,
            "protein" => datasets::Dataset::Protein,
            other => {
                return Err(RegistryError::Load(format!(
                    "unknown dataset `{other}` (expected abide|movielens|jester|protein)"
                )))
            }
        };
        Ok(GraphHandle::new_memory(
            format!("dataset:{}:{scale}:{seed}", name.to_ascii_lowercase()),
            dataset.generate(scale, seed),
        ))
    } else {
        let path = std::path::Path::new(spec);
        if is_container_file(path) {
            let reader = ContainerReader::open(path)
                .map_err(|e| RegistryError::Load(format!("cannot attach `{spec}`: {e}")))?;
            Ok(GraphHandle::new_container(format!("file:{spec}"), &reader))
        } else {
            let graph = bigraph::io::read_auto(path)
                .map_err(|e| RegistryError::Load(format!("cannot load `{spec}`: {e}")))?;
            Ok(GraphHandle::new_memory(format!("file:{spec}"), graph))
        }
    }
}

/// Whether `path` starts with the container magic.
fn is_container_file(path: &Path) -> bool {
    use std::io::Read;
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic).is_ok() && &magic == bigraph::storage::CONTAINER_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{GraphBuilder, Left, Right};

    fn tmp_container(name: &str, edges: u32) -> PathBuf {
        let mut b = GraphBuilder::new();
        for i in 0..edges {
            b.add_edge(Left(i % 7), Right(i % 11), (i % 5) as f64, 0.5)
                .unwrap();
        }
        let g = b.build().unwrap();
        let path =
            std::env::temp_dir().join(format!("mpmb_registry_{}_{name}.ubgc", std::process::id()));
        bigraph::storage::write_container_path(&g, &path).unwrap();
        path
    }

    #[test]
    fn dataset_spec_loads_and_lists() {
        let r = Registry::new();
        let e = r.load("tiny", "dataset:abide:0.01:7").unwrap();
        assert!(e.num_edges() > 0);
        assert_eq!(e.source, "dataset:abide:0.01:7");
        assert_eq!(e.backing_name(), "memory");
        assert!(e.is_resident());
        assert!(e.resident_bytes() > 0);
        assert_eq!(r.list().len(), 1);
        assert!(r.get("tiny").is_some());
        assert!(r.get("absent").is_none());
        let g = r.materialize(&e).unwrap();
        assert_eq!(g.num_edges() as u64, e.num_edges());
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Registry::new();
        r.load("g", "dataset:abide:0.01").unwrap();
        match r.load("g", "dataset:abide:0.01") {
            Err(RegistryError::Exists(n)) => assert_eq!(n, "g"),
            other => panic!("expected Exists, got {:?}", other.err()),
        }
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(load_spec("dataset:nope").is_err());
        assert!(load_spec("dataset:abide:2.0").is_err());
        assert!(load_spec("dataset:abide:0.01:x").is_err());
        assert!(load_spec("/no/such/file.txt").is_err());
        let r = Registry::new();
        assert!(r.load("bad name!", "dataset:abide:0.01").is_err());
    }

    #[test]
    fn defaults_applied() {
        let e = load_spec("dataset:movielens").unwrap();
        assert_eq!(e.source, "dataset:movielens:0.01:0");
    }

    #[test]
    fn container_attach_is_lazy_and_materializes_on_demand() {
        let path = tmp_container("lazy", 40);
        let r = Registry::new();
        let h = r.load("c", path.to_str().unwrap()).unwrap();
        assert_eq!(h.backing_name(), "container");
        assert!(!h.is_resident(), "attach must not materialize");
        assert_eq!(h.resident_bytes(), 0);
        assert_eq!(h.num_edges(), 40);
        assert!(h.container_checksum().is_some());
        let g = r.materialize(&h).unwrap();
        assert_eq!(g.num_edges(), 40);
        assert!(h.is_resident());
        assert!(h.resident_bytes() > 0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn expected_checksum_is_enforced() {
        let path = tmp_container("expected", 12);
        let sum = bigraph::storage::peek_container_checksum(&path).unwrap();
        let r = Registry::new();
        r.load_with_expected("ok", path.to_str().unwrap(), Some(sum))
            .unwrap();
        match r.load_with_expected("bad", path.to_str().unwrap(), Some(sum ^ 1)) {
            Err(RegistryError::Load(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected checksum error, got {:?}", other.err()),
        }
        match r.load_with_expected("mem", "dataset:abide:0.01", Some(sum)) {
            Err(RegistryError::Load(msg)) => assert!(msg.contains("not a container"), "{msg}"),
            other => panic!("expected error, got {:?}", other.err()),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn budget_evicts_cold_containers_lru_first() {
        let p1 = tmp_container("lru1", 60);
        let p2 = tmp_container("lru2", 60);
        // Budget of one byte: any residency is over budget, so each
        // materialize evicts everything unpinned.
        let r = Registry::with_budget(1);
        let h1 = r.load("a", p1.to_str().unwrap()).unwrap();
        let h2 = r.load("b", p2.to_str().unwrap()).unwrap();
        let g1 = r.materialize(&h1).unwrap();
        // g1 is pinned by our Arc: it must survive its own sweep.
        assert!(h1.is_resident());
        drop(g1);
        let _g2 = r.materialize(&h2).unwrap();
        assert!(!h1.is_resident(), "cold unpinned graph must be evicted");
        assert!(h2.is_resident(), "the in-use graph is pinned");
        let _ = std::fs::remove_file(p1);
        let _ = std::fs::remove_file(p2);
    }

    #[test]
    fn pinned_graphs_survive_eviction_and_memory_backing_never_evicts() {
        let p = tmp_container("pin", 30);
        let r = Registry::with_budget(1);
        let hm = r.load("mem", "dataset:abide:0.01:3").unwrap();
        let hc = r.load("c", p.to_str().unwrap()).unwrap();
        let pinned = r.materialize(&hc).unwrap();
        // Another materialize cycle while `pinned` is held.
        let _ = r.materialize(&hc).unwrap();
        assert!(hc.is_resident(), "pinned graph must not be evicted");
        assert!(hm.is_resident(), "memory backing is unevictable");
        drop(pinned);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn evict_reload_is_bit_identical() {
        // 77 edges is the (7, 11) residue-pair capacity of
        // `tmp_container`; more would duplicate (u0, v0).
        let p = tmp_container("bitid", 77);
        let r = Registry::with_budget(1);
        let h = r.load("g", p.to_str().unwrap()).unwrap();
        let g1 = r.materialize(&h).unwrap();
        let before: Vec<u64> = g1.accept_thresholds().to_vec();
        let desc_before: Vec<u32> = g1.desc_edge_ids().to_vec();
        drop(g1);
        // Force the eviction sweep with a second handle's materialize.
        let p2 = tmp_container("bitid2", 10);
        let h2 = r.load("g2", p2.to_str().unwrap()).unwrap();
        let _g2 = r.materialize(&h2).unwrap();
        assert!(!h.is_resident());
        let g3 = r.materialize(&h).unwrap();
        assert_eq!(g3.accept_thresholds(), &before[..]);
        assert_eq!(g3.desc_edge_ids(), &desc_before[..]);
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(p2);
    }

    #[test]
    fn swapped_container_file_is_refused_on_reload() {
        let p1 = tmp_container("swap_a", 20);
        let p2 = tmp_container("swap_b", 25);
        let r = Registry::with_budget(1);
        let h = r.load("g", p1.to_str().unwrap()).unwrap();
        drop(r.materialize(&h).unwrap());
        // Evict by materializing another graph...
        let p3 = tmp_container("swap_c", 5);
        let h3 = r.load("other", p3.to_str().unwrap()).unwrap();
        let _g3 = r.materialize(&h3).unwrap();
        assert!(!h.is_resident());
        // ...then swap the file underneath the evicted handle.
        std::fs::copy(&p2, &p1).unwrap();
        match r.materialize(&h) {
            Err(RegistryError::Load(msg)) => assert!(msg.contains("changed on disk"), "{msg}"),
            other => panic!("expected refusal, got {:?}", other.err()),
        }
        for p in [p1, p2, p3] {
            let _ = std::fs::remove_file(p);
        }
    }
}
