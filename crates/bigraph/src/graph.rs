//! The uncertain bipartite weighted network `G = (V=(L,R), E, p, w)`.
//!
//! Storage is CSR on both sides plus dense parallel edge arrays, built once
//! by [`GraphBuilder`](crate::GraphBuilder) and immutable afterwards: the
//! solvers sample tens of thousands of trials against one graph, so the
//! representation is optimized for repeated read-only scans.

use crate::types::{EdgeId, Left, Right, Side, Weight};

/// One adjacency entry: the neighbor's raw id and the connecting edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Adj {
    /// Raw id of the neighbor (a `Right` id in left adjacency lists, a
    /// `Left` id in right adjacency lists).
    pub nbr: u32,
    /// Edge connecting the list owner to `nbr`.
    pub edge: EdgeId,
}

/// An immutable uncertain bipartite weighted network (Definition 1).
///
/// The same structure doubles as the *backbone graph* `H`: the backbone is
/// simply this graph with probabilities ignored.
#[derive(Clone, Debug)]
pub struct UncertainBipartiteGraph {
    pub(crate) left_offsets: Vec<u32>,
    pub(crate) left_adj: Vec<Adj>,
    pub(crate) right_offsets: Vec<u32>,
    pub(crate) right_adj: Vec<Adj>,
    pub(crate) edge_left: Vec<u32>,
    pub(crate) edge_right: Vec<u32>,
    pub(crate) weights: Vec<Weight>,
    pub(crate) probs: Vec<f64>,
    /// Fixed-point Bernoulli acceptance thresholds, one per edge:
    /// `accept[e] = ⌈p(e) · 2⁵³⌉` (see
    /// [`fixed_point_threshold`](crate::fixed_point_threshold)).
    /// Precomputed once so the million-trial sampling loops compare raw
    /// `next_u64` words with a single integer compare.
    pub(crate) accept: Vec<u64>,
    /// Edge ids sorted by weight, descending (ties by id). Precomputed at
    /// build time because the §V-B edge ordering is the backbone of both OS
    /// and OLS, and sorting 39M edges per solver call would dominate.
    pub(crate) edges_by_weight_desc: Vec<u32>,
    /// `weights[e]` gathered into `edges_by_weight_desc` order: the §V-B
    /// scan reads weights sequentially instead of random-gathering.
    pub(crate) desc_weights: Vec<Weight>,
    /// `accept[e]` gathered into `edges_by_weight_desc` order, for the
    /// same sequential-scan reason.
    pub(crate) desc_accept: Vec<u64>,
    /// Degree-descending rank of each left vertex (ties by id ascending):
    /// `left_rank[u] = r` means `u` is the `r`-th most-connected left
    /// vertex. The wedge-listing kernel buckets by rank so hot counters
    /// concentrate at the head of its arrays (BFC-VP / Shi–Shun layout).
    pub(crate) left_rank: Vec<u32>,
    /// Inverse permutation of `left_rank`: original id per rank.
    pub(crate) left_by_rank: Vec<u32>,
}

impl UncertainBipartiteGraph {
    /// Number of left vertices `|L|`.
    #[inline]
    pub fn num_left(&self) -> usize {
        self.left_offsets.len() - 1
    }

    /// Number of right vertices `|R|`.
    #[inline]
    pub fn num_right(&self) -> usize {
        self.right_offsets.len() - 1
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.weights.len()
    }

    /// Edge weight `w(e)`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.weights[e.index()]
    }

    /// Edge existence probability `p(e)`.
    #[inline]
    pub fn prob(&self, e: EdgeId) -> f64 {
        self.probs[e.index()]
    }

    /// Fixed-point acceptance threshold `⌈p(e) · 2⁵³⌉` of edge `e` (see
    /// [`fixed_point_threshold`](crate::fixed_point_threshold)).
    #[inline]
    pub fn accept_threshold(&self, e: EdgeId) -> u64 {
        self.accept[e.index()]
    }

    /// All acceptance thresholds, indexed by edge id.
    #[inline]
    pub fn accept_thresholds(&self) -> &[u64] {
        &self.accept
    }

    /// Endpoints of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (Left, Right) {
        (
            Left(self.edge_left[e.index()]),
            Right(self.edge_right[e.index()]),
        )
    }

    /// All edge ids, ascending.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Edge ids sorted by weight descending (ties broken by id); the §V-B
    /// edge ordering.
    #[inline]
    pub fn edges_by_weight_desc(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges_by_weight_desc.iter().map(|&e| EdgeId(e))
    }

    /// Raw edge-id slice of the §V-B weight-descending order.
    #[inline]
    pub fn desc_edge_ids(&self) -> &[u32] {
        &self.edges_by_weight_desc
    }

    /// Edge weights aligned with [`Self::desc_edge_ids`]:
    /// `desc_weights()[i] == weight(desc_edge_ids()[i])`. Lets the §V-B
    /// scan read weights sequentially.
    #[inline]
    pub fn desc_weights(&self) -> &[Weight] {
        &self.desc_weights
    }

    /// Acceptance thresholds aligned with [`Self::desc_edge_ids`].
    #[inline]
    pub fn desc_accepts(&self) -> &[u64] {
        &self.desc_accept
    }

    /// Degree-descending ranks of the left vertices (ties by id): the
    /// locality relabeling used by the wedge-listing kernel.
    #[inline]
    pub fn left_ranks(&self) -> &[u32] {
        &self.left_rank
    }

    /// Inverse of [`Self::left_ranks`]: original left id per rank.
    #[inline]
    pub fn left_by_rank(&self) -> &[u32] {
        &self.left_by_rank
    }

    /// Raw adjacency slice of a left vertex (sorted by neighbor id).
    #[inline]
    pub fn left_adj(&self, u: Left) -> &[Adj] {
        let lo = self.left_offsets[u.index()] as usize;
        let hi = self.left_offsets[u.index() + 1] as usize;
        &self.left_adj[lo..hi]
    }

    /// Raw adjacency slice of a right vertex (sorted by neighbor id).
    #[inline]
    pub fn right_adj(&self, v: Right) -> &[Adj] {
        let lo = self.right_offsets[v.index()] as usize;
        let hi = self.right_offsets[v.index() + 1] as usize;
        &self.right_adj[lo..hi]
    }

    /// Typed neighbor iterator for a left vertex.
    pub fn left_neighbors(&self, u: Left) -> impl Iterator<Item = (Right, EdgeId)> + '_ {
        self.left_adj(u).iter().map(|a| (Right(a.nbr), a.edge))
    }

    /// Typed neighbor iterator for a right vertex.
    pub fn right_neighbors(&self, v: Right) -> impl Iterator<Item = (Left, EdgeId)> + '_ {
        self.right_adj(v).iter().map(|a| (Left(a.nbr), a.edge))
    }

    /// Backbone degree of a left vertex.
    #[inline]
    pub fn left_degree(&self, u: Left) -> usize {
        self.left_adj(u).len()
    }

    /// Backbone degree of a right vertex.
    #[inline]
    pub fn right_degree(&self, v: Right) -> usize {
        self.right_adj(v).len()
    }

    /// Looks up the edge between `u` and `v`, if present in the backbone.
    /// Binary search over the (id-sorted) adjacency of the smaller side.
    /// Out-of-range vertex ids simply return `None` (useful when probing
    /// externally supplied butterflies).
    pub fn find_edge(&self, u: Left, v: Right) -> Option<EdgeId> {
        if u.index() >= self.num_left() || v.index() >= self.num_right() {
            return None;
        }
        let (list, key) = if self.left_degree(u) <= self.right_degree(v) {
            (self.left_adj(u), v.0)
        } else {
            (self.right_adj(v), u.0)
        };
        list.binary_search_by_key(&key, |a| a.nbr)
            .ok()
            .map(|i| list[i].edge)
    }

    /// Expected degree `d̄(u) = Σ_{e∋u} p(e)` of a left vertex (Lemma IV.1).
    pub fn expected_left_degree(&self, u: Left) -> f64 {
        self.left_adj(u).iter().map(|a| self.prob(a.edge)).sum()
    }

    /// Expected degree `d̄(v)` of a right vertex.
    pub fn expected_right_degree(&self, v: Right) -> f64 {
        self.right_adj(v).iter().map(|a| self.prob(a.edge)).sum()
    }

    /// `Σ_{x ∈ side} (d̄(x))²`: the Lemma V.1 cost proxy used to pick the
    /// cheaper middle side for angle generation. The lemma's exact quantity
    /// is the expected *square* of the degree; like the paper (§V-D
    /// discussion) we use the square of the expectation, which is cheap and
    /// a lower bound, and only affects a constant-factor heuristic choice.
    pub fn sum_sq_expected_degree(&self, side: Side) -> f64 {
        match side {
            Side::Left => (0..self.num_left())
                .map(|i| {
                    let d = self.expected_left_degree(Left(i as u32));
                    d * d
                })
                .sum(),
            Side::Right => (0..self.num_right())
                .map(|i| {
                    let d = self.expected_right_degree(Right(i as u32));
                    d * d
                })
                .sum(),
        }
    }

    /// The side whose vertices should act as angle *middles* in Ordering
    /// Sampling: the one minimizing the Lemma V.1 cost proxy.
    pub fn cheaper_middle_side(&self) -> Side {
        if self.sum_sq_expected_degree(Side::Right) <= self.sum_sq_expected_degree(Side::Left) {
            Side::Right
        } else {
            Side::Left
        }
    }

    /// `w̄ = w(e₁)+w(e₂)+w(e₃)`: the sum of the three largest edge weights
    /// (Algorithm 2 line 2). Any butterfly containing edge `e` weighs at
    /// most `w(e) + w̄`, which justifies the §V-B pruning. Returns 0.0 for
    /// graphs with fewer than three edges (no butterfly can exist anyway).
    pub fn top3_weight_sum(&self) -> Weight {
        let k = self.edges_by_weight_desc.len().min(3);
        self.edges_by_weight_desc[..k]
            .iter()
            .map(|&e| self.weights[e as usize])
            .sum()
    }

    /// Total number of angles (paths of length 2) in the backbone with a
    /// middle vertex on `side`. Useful for workload sizing in benches.
    pub fn backbone_angle_count(&self, side: Side) -> u64 {
        let deg_iter: Box<dyn Iterator<Item = usize>> = match side {
            Side::Left => Box::new((0..self.num_left()).map(|i| self.left_degree(Left(i as u32)))),
            Side::Right => {
                Box::new((0..self.num_right()).map(|i| self.right_degree(Right(i as u32))))
            }
        };
        deg_iter
            .map(|d| (d as u64) * (d as u64).saturating_sub(1) / 2)
            .sum()
    }

    /// Existence probability of a set of edges, assuming independence:
    /// `Pr[E(S)] = Π_{e∈S} p(e)`.
    pub fn edges_existence_prob(&self, edges: &[EdgeId]) -> f64 {
        edges.iter().map(|&e| self.prob(e)).product()
    }

    /// Bytes of heap memory the graph's arrays occupy while resident.
    /// A pure function of the graph's dimensions (element counts ×
    /// element sizes, ignoring allocator slack), so the serving
    /// registry's memory-budget accounting is deterministic across
    /// runs and platforms.
    pub fn resident_bytes(&self) -> u64 {
        use std::mem::size_of;
        let u32s = self.left_offsets.len()
            + self.right_offsets.len()
            + self.edge_left.len()
            + self.edge_right.len()
            + self.edges_by_weight_desc.len()
            + self.left_rank.len()
            + self.left_by_rank.len();
        let u64s = self.weights.len()
            + self.probs.len()
            + self.accept.len()
            + self.desc_weights.len()
            + self.desc_accept.len();
        let adjs = self.left_adj.len() + self.right_adj.len();
        (u32s * size_of::<u32>() + u64s * size_of::<u64>() + adjs * size_of::<Adj>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// The Figure 1(a) example network.
    pub(crate) fn fig1_graph() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = fig1_graph();
        assert_eq!(g.num_left(), 2);
        assert_eq!(g.num_right(), 3);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn adjacency_is_consistent_both_sides() {
        let g = fig1_graph();
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            assert!(g.left_neighbors(u).any(|(r, ee)| r == v && ee == e));
            assert!(g.right_neighbors(v).any(|(l, ee)| l == u && ee == e));
        }
    }

    #[test]
    fn find_edge_present_and_absent() {
        let g = fig1_graph();
        let e = g.find_edge(Left(1), Right(2)).unwrap();
        assert_eq!(g.weight(e), 1.0);
        assert_eq!(g.prob(e), 0.7);
        // Build a sparse graph to exercise the absent path.
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.5).unwrap();
        b.add_edge(Left(1), Right(1), 1.0, 0.5).unwrap();
        let g2 = b.build().unwrap();
        assert!(g2.find_edge(Left(0), Right(1)).is_none());
    }

    #[test]
    fn expected_degrees_match_hand_computation() {
        let g = fig1_graph();
        let d = g.expected_left_degree(Left(0));
        assert!((d - (0.5 + 0.6 + 0.8)).abs() < 1e-12);
        let d = g.expected_right_degree(Right(1));
        assert!((d - (0.6 + 0.4)).abs() < 1e-12);
    }

    #[test]
    fn weight_order_is_descending() {
        let g = fig1_graph();
        let ws: Vec<f64> = g.edges_by_weight_desc().map(|e| g.weight(e)).collect();
        assert!(ws.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(ws[0], 3.0);
        assert_eq!(*ws.last().unwrap(), 1.0);
    }

    #[test]
    fn top3_weight_sum_examples() {
        let g = fig1_graph();
        assert_eq!(g.top3_weight_sum(), 3.0 + 3.0 + 2.0);
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 5.0, 1.0).unwrap();
        assert_eq!(b.build().unwrap().top3_weight_sum(), 5.0);
    }

    #[test]
    fn middle_side_prefers_lower_cost() {
        // 1 left hub connected to 4 rights: left side has d̄² = 16·p²,
        // right side 4·p² ⇒ middles should be right vertices.
        let mut b = GraphBuilder::new();
        for v in 0..4 {
            b.add_edge(Left(0), Right(v), 1.0, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(g.cheaper_middle_side(), Side::Right);
    }

    #[test]
    fn backbone_angle_count_matches_combinatorics() {
        let g = fig1_graph();
        // Every right vertex has degree 2 → C(2,2)=1 angle each, 3 total.
        assert_eq!(g.backbone_angle_count(Side::Right), 3);
        // Left vertices have degree 3 → C(3,2)=3 angles each, 6 total.
        assert_eq!(g.backbone_angle_count(Side::Left), 6);
    }

    #[test]
    fn edge_set_existence_probability() {
        let g = fig1_graph();
        let e0 = g.find_edge(Left(0), Right(0)).unwrap();
        let e1 = g.find_edge(Left(1), Right(1)).unwrap();
        let p = g.edges_existence_prob(&[e0, e1]);
        assert!((p - 0.5 * 0.4).abs() < 1e-12);
        assert_eq!(g.edges_existence_prob(&[]), 1.0);
    }
}
