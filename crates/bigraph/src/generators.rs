//! Synthetic uncertain bipartite network generators.
//!
//! These are the generic building blocks; the `datasets` crate composes
//! them into stand-ins for the paper's four evaluation datasets. All
//! generators are deterministic given a seed.
//!
//! Weights are quantized to multiples of 1/64 by default (see
//! [`quantize_weight`]): binary fractions of modest magnitude add exactly
//! in `f64`, which makes weight-equality comparisons (`S_MB` membership,
//! Algorithm 2 lines 16–18) independent of summation order.

use crate::builder::GraphBuilder;
use crate::fx::FxHashSet;
use crate::graph::UncertainBipartiteGraph;
use crate::types::{Left, Right, Weight};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Quantizes a weight to the nearest multiple of 1/64 (non-negative).
#[inline]
pub fn quantize_weight(w: f64) -> Weight {
    ((w * 64.0).round() / 64.0).max(0.0)
}

/// A distribution over edge scalar values (weights or probabilities).
#[derive(Clone, Debug)]
pub enum ValueDist {
    /// A single constant.
    Constant(f64),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Normal(mean, sd) clamped to `[lo, hi]` — the paper's own Protein
    /// preprocessing draws probabilities from Normal(0.5, 0.2).
    ClampedNormal {
        /// Mean of the underlying normal.
        mean: f64,
        /// Standard deviation of the underlying normal.
        sd: f64,
        /// Clamp lower bound.
        lo: f64,
        /// Clamp upper bound.
        hi: f64,
    },
    /// Uniform pick from an explicit grid of values (e.g. the MovieLens
    /// half-star rating scale).
    Grid(Vec<f64>),
}

impl ValueDist {
    /// Draws one value.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        match self {
            ValueDist::Constant(c) => *c,
            ValueDist::Uniform { lo, hi } => rng.random_range(*lo..=*hi),
            ValueDist::ClampedNormal { mean, sd, lo, hi } => {
                (mean + sd * standard_normal(rng)).clamp(*lo, *hi)
            }
            ValueDist::Grid(vals) => {
                assert!(!vals.is_empty(), "empty value grid");
                vals[rng.random_range(0..vals.len())]
            }
        }
    }
}

/// One standard-normal draw via Box–Muller (we avoid a `rand_distr`
/// dependency; two uniforms per normal is fine at generator scale).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generates a uniform random bipartite graph: `m` distinct edges sampled
/// uniformly from `L × R`.
///
/// # Panics
/// Panics if `m > nl * nr`.
pub fn uniform_random(
    nl: u32,
    nr: u32,
    m: usize,
    weights: &ValueDist,
    probs: &ValueDist,
    seed: u64,
) -> UncertainBipartiteGraph {
    let capacity = nl as u64 * nr as u64;
    assert!(m as u64 <= capacity, "m={m} exceeds {nl}x{nr}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(m);
    b.reserve_vertices(nl, nr);

    if m as u64 * 3 > capacity {
        // Dense regime: per-pair Bernoulli would skew the count; instead
        // take a partial Fisher–Yates over all pairs.
        let mut pairs: Vec<u64> = (0..capacity).collect();
        for i in 0..m {
            let j = rng.random_range(i as u64..capacity) as usize;
            pairs.swap(i, j);
            let (u, v) = ((pairs[i] / nr as u64) as u32, (pairs[i] % nr as u64) as u32);
            add(&mut b, u, v, weights, probs, &mut rng);
        }
    } else {
        // Sparse regime: rejection sampling with a hash set of used pairs.
        let mut used: FxHashSet<u64> = FxHashSet::default();
        used.reserve(m);
        while used.len() < m {
            let u = rng.random_range(0..nl);
            let v = rng.random_range(0..nr);
            if used.insert(u as u64 * nr as u64 + v as u64) {
                add(&mut b, u, v, weights, probs, &mut rng);
            }
        }
    }
    b.build().expect("generator produced invalid graph")
}

/// Generates a bipartite graph with Zipf-distributed right-vertex
/// popularity (exponent `s`): each of the `m` edges picks its right
/// endpoint from a Zipf law over `R` and its left endpoint uniformly,
/// rejecting duplicates. Models rating data where a few items are "hot".
pub fn zipf_bipartite(
    nl: u32,
    nr: u32,
    m: usize,
    s: f64,
    weights: &ValueDist,
    probs: &ValueDist,
    seed: u64,
) -> UncertainBipartiteGraph {
    assert!(m as u64 <= nl as u64 * nr as u64, "m exceeds capacity");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Cumulative Zipf weights over right vertices.
    let mut cum = Vec::with_capacity(nr as usize);
    let mut total = 0.0;
    for k in 1..=nr as u64 {
        total += 1.0 / (k as f64).powf(s);
        cum.push(total);
    }

    let mut b = GraphBuilder::with_capacity(m);
    b.reserve_vertices(nl, nr);
    let mut used: FxHashSet<u64> = FxHashSet::default();
    used.reserve(m);
    let mut stall = 0u32;
    while used.len() < m {
        let x = rng.random_range(0.0..total);
        let v = cum.partition_point(|&c| c <= x) as u32;
        let u = rng.random_range(0..nl);
        if used.insert(u as u64 * nr as u64 + v as u64) {
            add(&mut b, u, v, weights, probs, &mut rng);
            stall = 0;
        } else {
            stall += 1;
            if stall > 10_000 {
                // The hot Zipf head saturated; fall back to uniform pairs
                // for the remainder so generation always terminates.
                let u = rng.random_range(0..nl);
                let v = rng.random_range(0..nr);
                if used.insert(u as u64 * nr as u64 + v as u64) {
                    add(&mut b, u, v, weights, probs, &mut rng);
                    stall = 0;
                }
            }
        }
    }
    b.build().expect("generator produced invalid graph")
}

/// Generates the complete bipartite graph `K_{nl,nr}` with sampled scalars.
pub fn complete(
    nl: u32,
    nr: u32,
    weights: &ValueDist,
    probs: &ValueDist,
    seed: u64,
) -> UncertainBipartiteGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(nl as usize * nr as usize);
    for u in 0..nl {
        for v in 0..nr {
            add(&mut b, u, v, weights, probs, &mut rng);
        }
    }
    b.build().expect("generator produced invalid graph")
}

fn add(
    b: &mut GraphBuilder,
    u: u32,
    v: u32,
    weights: &ValueDist,
    probs: &ValueDist,
    rng: &mut impl Rng,
) {
    let w = quantize_weight(weights.sample(rng));
    let p = probs.sample(rng).clamp(0.0, 1.0);
    b.add_edge(Left(u), Right(v), w, p)
        .expect("generator emitted duplicate or invalid edge");
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: ValueDist = ValueDist::Uniform { lo: 0.5, hi: 5.0 };
    const P: ValueDist = ValueDist::Uniform { lo: 0.1, hi: 0.9 };

    #[test]
    fn quantization_is_exact_binary_fraction() {
        let w = quantize_weight(2.71815);
        assert_eq!(w * 64.0, (w * 64.0).round());
        assert_eq!(quantize_weight(-2.0), 0.0);
    }

    #[test]
    fn uniform_random_has_exact_edge_count_and_no_dups() {
        for m in [0usize, 1, 50, 200] {
            let g = uniform_random(20, 30, m, &W, &P, 99);
            assert_eq!(g.num_edges(), m);
            assert_eq!(g.num_left(), 20);
            assert_eq!(g.num_right(), 30);
        }
    }

    #[test]
    fn uniform_random_dense_regime() {
        // m close to capacity exercises the Fisher–Yates path.
        let g = uniform_random(8, 8, 60, &W, &P, 7);
        assert_eq!(g.num_edges(), 60);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_random(10, 10, 40, &W, &P, 5);
        let b = uniform_random(10, 10, 40, &W, &P, 5);
        for e in a.edge_ids() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
            assert_eq!(a.weight(e), b.weight(e));
            assert_eq!(a.prob(e), b.prob(e));
        }
        let c = uniform_random(10, 10, 40, &W, &P, 6);
        let same = a
            .edge_ids()
            .all(|e| a.endpoints(e) == c.endpoints(e) && a.weight(e) == c.weight(e));
        assert!(!same, "different seeds produced identical graphs");
    }

    #[test]
    fn zipf_skews_right_degrees() {
        let g = zipf_bipartite(200, 200, 2_000, 1.2, &W, &P, 11);
        assert_eq!(g.num_edges(), 2_000);
        let mut degs: Vec<usize> = (0..200).map(|v| g.right_degree(Right(v))).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Top 10% of items should hold well over 10% of edges.
        let head: usize = degs[..20].iter().sum();
        assert!(head * 100 > 2_000 * 25, "head share too flat: {head}");
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete(6, 7, &W, &P, 1);
        assert_eq!(g.num_edges(), 42);
        for u in 0..6 {
            assert_eq!(g.left_degree(Left(u)), 7);
        }
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let d = ValueDist::ClampedNormal {
            mean: 0.5,
            sd: 0.2,
            lo: 0.01,
            hi: 0.99,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!((0.01..=0.99).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn grid_dist_only_emits_grid_values() {
        let d = ValueDist::Grid(vec![0.5, 1.0, 1.5]);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!([0.5, 1.0, 1.5].contains(&x));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let n = 50_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            s1 += x;
            s2 += x * x;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }
}
