//! In-tree FxHash-style hasher for integer-keyed hot-path maps.
//!
//! The MPMB solvers key hash maps by small integers and integer pairs
//! (endpoint pairs for angle sets, butterflies for probability tallies).
//! SipHash — the std default — is needlessly slow for such keys, and HashDoS
//! resistance is irrelevant for an analytics library operating on the user's
//! own graph. Rather than pulling an extra dependency, this module
//! implements the same multiply-rotate mix rustc's `FxHasher` uses.

use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio multiplier used by the Fx mix (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for integer-like keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the byte stream; remainder folded as one word.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one((3u32, 4u32)), hash_one((3u32, 4u32)));
    }

    #[test]
    fn distinguishes_small_pairs() {
        // Not a collision-resistance claim, just a sanity check that the mix
        // doesn't degenerate on the key shapes the solvers use.
        let pairs = [(0u32, 1u32), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)];
        let hashes: Vec<u64> = pairs.iter().map(|&p| hash_one(p)).collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{:?} vs {:?}", pairs[i], pairs[j]);
            }
        }
    }

    #[test]
    fn byte_stream_matches_chunked_writes() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn distribution_smoke_low_bits() {
        // Sequential keys should not collide in the low bits too heavily,
        // since hashbrown uses the low bits for bucket selection.
        let mut buckets = [0u32; 64];
        for k in 0..4096u64 {
            buckets[(hash_one(k) & 63) as usize] += 1;
        }
        let min = *buckets.iter().min().unwrap();
        let max = *buckets.iter().max().unwrap();
        assert!(min > 0, "empty bucket: degenerate mix");
        assert!(max < 4096 / 8, "pathologically hot bucket");
    }
}
