//! Degree-based vertex priority order `o(·)` for BFC-VP-style enumeration.
//!
//! The MC-VP baseline (Algorithm 1, line 2) assigns every vertex of
//! `V = L ∪ R` a priority: *"a vertex with a larger degree will have a
//! larger priority order"*. Angle generation then only starts from the
//! highest-priority vertex of each wedge (`o(u_i) > o(u_j)` and
//! `o(u_i) > o(u_k)`), which is the load-balancing idea of BFC-VP
//! [Wang et al., PVLDB 2019]: each wedge is produced exactly once, and the
//! middle vertex is never the highest-degree one.

use crate::graph::UncertainBipartiteGraph;
use crate::types::{Left, Right, Vertex};

/// Precomputed priority ranks over `V = L ∪ R`.
///
/// Ranks are dense `0..(|L|+|R|)`, ascending with (degree, side, id), so
/// `rank(a) > rank(b)` iff `a` has larger degree, with deterministic
/// tie-breaking. Higher rank = higher priority.
#[derive(Clone, Debug)]
pub struct VertexPriority {
    left_rank: Vec<u32>,
    right_rank: Vec<u32>,
}

impl VertexPriority {
    /// Computes the priority order for `g` from backbone degrees.
    pub fn from_degrees(g: &UncertainBipartiteGraph) -> Self {
        let nl = g.num_left();
        let nr = g.num_right();
        // (degree, side, id) ascending; side=0 for left to keep ties stable.
        let mut order: Vec<(u32, u8, u32)> = Vec::with_capacity(nl + nr);
        for i in 0..nl {
            order.push((g.left_degree(Left(i as u32)) as u32, 0, i as u32));
        }
        for i in 0..nr {
            order.push((g.right_degree(Right(i as u32)) as u32, 1, i as u32));
        }
        order.sort_unstable();
        let mut left_rank = vec![0u32; nl];
        let mut right_rank = vec![0u32; nr];
        for (rank, &(_, side, id)) in order.iter().enumerate() {
            if side == 0 {
                left_rank[id as usize] = rank as u32;
            } else {
                right_rank[id as usize] = rank as u32;
            }
        }
        VertexPriority {
            left_rank,
            right_rank,
        }
    }

    /// Priority rank of a left vertex.
    #[inline]
    pub fn left(&self, u: Left) -> u32 {
        self.left_rank[u.index()]
    }

    /// Priority rank of a right vertex.
    #[inline]
    pub fn right(&self, v: Right) -> u32 {
        self.right_rank[v.index()]
    }

    /// Priority rank of an arbitrary vertex.
    #[inline]
    pub fn rank(&self, v: Vertex) -> u32 {
        match v {
            Vertex::L(u) => self.left(u),
            Vertex::R(r) => self.right(r),
        }
    }

    /// True iff `a` strictly precedes `b` in priority (i.e. `o(a) > o(b)`
    /// in the paper's notation would be `higher(a, b)`).
    #[inline]
    pub fn higher(&self, a: Vertex, b: Vertex) -> bool {
        self.rank(a) > self.rank(b)
    }
}

/// Dense degree-**descending** ranks over one vertex side (ties broken by
/// id ascending): returns `(rank, by_rank)` with `rank[v] = r` iff
/// `by_rank[r] = v`. Rank 0 is the most-connected vertex.
///
/// This is the single-side variant of the BFC-VP priority idea that the
/// wedge-listing kernel uses as a *storage relabeling*: bucketing wedge
/// endpoints by rank instead of raw id concentrates the frequently touched
/// counters at the head of the bucket arrays (high-degree vertices appear
/// in the most wedges), so the hot part of the scratch stays cache
/// resident. It is a pure permutation of index space — consumers that
/// translate back through `by_rank` before emitting observe no change.
pub fn degree_desc_ranks(degrees: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let n = degrees.len();
    let mut by_rank: Vec<u32> = (0..n as u32).collect();
    by_rank.sort_unstable_by_key(|&v| (std::cmp::Reverse(degrees[v as usize]), v));
    let mut rank = vec![0u32; n];
    for (r, &v) in by_rank.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    (rank, by_rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn star_plus_edge() -> UncertainBipartiteGraph {
        // u0 connected to v0..v3 (deg 4); u1–v0 (deg 1); v0 deg 2.
        let mut b = GraphBuilder::new();
        for v in 0..4 {
            b.add_edge(Left(0), Right(v), 1.0, 0.5).unwrap();
        }
        b.add_edge(Left(1), Right(0), 1.0, 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn larger_degree_gets_larger_rank() {
        let g = star_plus_edge();
        let p = VertexPriority::from_degrees(&g);
        assert!(p.left(Left(0)) > p.right(Right(0)), "deg4 vs deg2");
        assert!(p.right(Right(0)) > p.left(Left(1)), "deg2 vs deg1");
        assert!(p.right(Right(0)) > p.right(Right(1)), "deg2 vs deg1");
    }

    #[test]
    fn ranks_are_a_permutation() {
        let g = star_plus_edge();
        let p = VertexPriority::from_degrees(&g);
        let mut all: Vec<u32> = (0..g.num_left() as u32)
            .map(|i| p.left(Left(i)))
            .chain((0..g.num_right() as u32).map(|i| p.right(Right(i))))
            .collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..(g.num_left() + g.num_right()) as u32).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn ties_break_deterministically() {
        let g = star_plus_edge();
        let p1 = VertexPriority::from_degrees(&g);
        let p2 = VertexPriority::from_degrees(&g);
        for i in 0..g.num_right() as u32 {
            assert_eq!(p1.right(Right(i)), p2.right(Right(i)));
        }
        // Equal-degree vertices still get a strict order.
        assert_ne!(p1.right(Right(1)), p1.right(Right(2)));
    }

    #[test]
    fn degree_desc_ranks_is_an_inverse_pair_with_ties_by_id() {
        let degrees = [2u32, 5, 2, 0, 5];
        let (rank, by_rank) = degree_desc_ranks(&degrees);
        // Degree 5 first (ids 1 then 4), then degree 2 (ids 0 then 2),
        // then degree 0.
        assert_eq!(by_rank, vec![1, 4, 0, 2, 3]);
        for (r, &v) in by_rank.iter().enumerate() {
            assert_eq!(rank[v as usize], r as u32);
        }
        assert_eq!(degree_desc_ranks(&[]), (vec![], vec![]));
    }

    #[test]
    fn higher_agrees_with_rank() {
        let g = star_plus_edge();
        let p = VertexPriority::from_degrees(&g);
        let a = Vertex::from(Left(0));
        let b = Vertex::from(Right(3));
        assert_eq!(p.higher(a, b), p.rank(a) > p.rank(b));
        assert!(!p.higher(a, a));
    }
}
