//! Graph transformations used by the paper's preprocessing and use cases.
//!
//! * [`bipartition_by_parity`] — the paper's own Protein preprocessing:
//!   "divided vertices equally by their odd and even IDs" turns a general
//!   weighted edge list into a bipartite network.
//! * [`reward_cold_items`] — the §I use case 1 optimized-UserCF weighting:
//!   edges to unpopular ("cold") right vertices get a reward multiplier,
//!   which is what makes the MPMB prefer diverse recommendations (Fig. 2).
//! * [`scale_probabilities`] — power/scale calibration of edge
//!   probabilities, useful for sensitivity studies.

use crate::builder::{BuildError, GraphBuilder};
use crate::generators::quantize_weight;
use crate::graph::UncertainBipartiteGraph;
use crate::types::{Left, Right};

/// Builds an uncertain bipartite network from a general (non-bipartite)
/// weighted edge list by the paper's parity split: even-id endpoints go to
/// `L` (as `id/2`), odd ids to `R` (as `id/2`); edges between same-parity
/// endpoints are dropped. Duplicate `(left, right)` pairs keep the first
/// occurrence.
pub fn bipartition_by_parity(
    edges: impl IntoIterator<Item = (u64, u64, f64, f64)>,
) -> Result<UncertainBipartiteGraph, BuildError> {
    let mut b = GraphBuilder::new();
    let mut seen = crate::fx::FxHashSet::default();
    for (a, c, w, p) in edges {
        let (even, odd) = match (a % 2 == 0, c % 2 == 0) {
            (true, false) => (a, c),
            (false, true) => (c, a),
            _ => continue, // same parity: not representable bipartitely
        };
        let (u, v) = ((even / 2) as u32, (odd / 2) as u32);
        if seen.insert((u, v)) {
            b.add_edge(Left(u), Right(v), w, p)?;
        }
    }
    b.build()
}

/// Returns a copy of `g` with cold-item reward weighting (§I use case 1):
/// `w'(e) = w(e) · (1 + reward · (1 − deg(v)/deg_max))` for an edge to
/// right vertex `v`, quantized. `reward = 0` is the identity (up to
/// quantization of already-quantized weights).
///
/// # Panics
/// Panics if `reward` is negative or non-finite.
pub fn reward_cold_items(g: &UncertainBipartiteGraph, reward: f64) -> UncertainBipartiteGraph {
    assert!(reward >= 0.0 && reward.is_finite(), "invalid reward");
    let deg_max = (0..g.num_right())
        .map(|v| g.right_degree(Right(v as u32)))
        .max()
        .unwrap_or(0)
        .max(1) as f64;
    let mut b = GraphBuilder::with_capacity(g.num_edges());
    b.reserve_vertices(g.num_left() as u32, g.num_right() as u32);
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        let coldness = 1.0 - g.right_degree(v) as f64 / deg_max;
        let w = quantize_weight(g.weight(e) * (1.0 + reward * coldness));
        b.add_edge(u, v, w, g.prob(e))
            .expect("copy of a valid graph");
    }
    b.build().expect("copy of a valid graph")
}

/// Returns a copy of `g` with probabilities raised to `power` and scaled
/// by `factor`, clamped into `[0, 1]`. `power = 1, factor = 1` is the
/// identity. Useful for studying solver behaviour under sparser or denser
/// possible worlds without touching the structure.
///
/// # Panics
/// Panics unless `power > 0` and `factor ≥ 0` are finite.
pub fn scale_probabilities(
    g: &UncertainBipartiteGraph,
    power: f64,
    factor: f64,
) -> UncertainBipartiteGraph {
    assert!(power > 0.0 && power.is_finite(), "invalid power");
    assert!(factor >= 0.0 && factor.is_finite(), "invalid factor");
    let mut b = GraphBuilder::with_capacity(g.num_edges());
    b.reserve_vertices(g.num_left() as u32, g.num_right() as u32);
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        let p = (g.prob(e).powf(power) * factor).clamp(0.0, 1.0);
        b.add_edge(u, v, g.weight(e), p)
            .expect("copy of a valid graph");
    }
    b.build().expect("copy of a valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_split_maps_ids_and_drops_same_parity() {
        // (0,1): even-odd -> L0-R0. (2,3): -> L1-R1. (4,6): even-even,
        // dropped. (5,2): odd-even -> L1-R2.
        let g = bipartition_by_parity([
            (0u64, 1u64, 1.0, 0.5),
            (2, 3, 2.0, 0.6),
            (4, 6, 3.0, 0.7),
            (5, 2, 4.0, 0.8),
        ])
        .unwrap();
        assert_eq!(g.num_edges(), 3);
        let e = g.find_edge(Left(0), Right(0)).unwrap();
        assert_eq!(g.weight(e), 1.0);
        let e = g.find_edge(Left(1), Right(2)).unwrap();
        assert_eq!((g.weight(e), g.prob(e)), (4.0, 0.8));
        // The same-parity edge (4,6) contributed no vertices beyond the
        // ones above.
        assert_eq!(g.num_left(), 2);
        assert_eq!(g.num_right(), 3);
    }

    #[test]
    fn parity_split_keeps_first_duplicate() {
        let g = bipartition_by_parity([
            (0u64, 1u64, 1.0, 0.5),
            (1, 0, 9.0, 0.9), // same pair, reversed order
        ])
        .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(crate::EdgeId(0)), 1.0);
    }

    #[test]
    fn cold_reward_boosts_low_degree_items_only() {
        let mut b = GraphBuilder::new();
        // v0 hot (3 edges), v1 cold (1 edge), all weight 2.
        for u in 0..3 {
            b.add_edge(Left(u), Right(0), 2.0, 0.5).unwrap();
        }
        b.add_edge(Left(0), Right(1), 2.0, 0.5).unwrap();
        let g = b.build().unwrap();
        let r = reward_cold_items(&g, 1.5);
        let hot = r.find_edge(Left(0), Right(0)).unwrap();
        let cold = r.find_edge(Left(0), Right(1)).unwrap();
        assert_eq!(r.weight(hot), 2.0, "hottest item must be unrewarded");
        // coldness = 1 − 1/3 = 2/3; w' = 2·(1 + 1.5·2/3) = 4, exactly.
        assert_eq!(r.weight(cold), 4.0);
        // Probabilities untouched.
        assert_eq!(r.prob(cold), 0.5);
    }

    #[test]
    fn zero_reward_is_identity_on_quantized_weights() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.25, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 3.5, 0.6).unwrap();
        let g = b.build().unwrap();
        let r = reward_cold_items(&g, 0.0);
        for e in g.edge_ids() {
            assert_eq!(g.weight(e), r.weight(e));
        }
    }

    #[test]
    fn probability_scaling_clamps_and_powers() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.25).unwrap();
        b.add_edge(Left(0), Right(1), 1.0, 0.8).unwrap();
        let g = b.build().unwrap();
        let s = scale_probabilities(&g, 2.0, 1.0);
        assert!((s.prob(crate::EdgeId(0)) - 0.0625).abs() < 1e-12);
        let s = scale_probabilities(&g, 1.0, 2.0);
        assert_eq!(s.prob(crate::EdgeId(1)), 1.0, "clamped at 1");
        let id = scale_probabilities(&g, 1.0, 1.0);
        for e in g.edge_ids() {
            assert_eq!(g.prob(e), id.prob(e));
        }
    }

    #[test]
    #[should_panic(expected = "invalid reward")]
    fn rejects_negative_reward() {
        let g = GraphBuilder::new().build().unwrap();
        let _ = reward_cold_items(&g, -1.0);
    }
}
