//! Out-of-core container format for [`UncertainBipartiteGraph`].
//!
//! `UBGCONT1` is a sectioned, versioned, checksummed extension of the
//! [`codec`](crate::codec) conventions (8-byte magic, little-endian
//! fixed-width integers, FNV-1a 64 checksums). Where the `UBGRAPH1`
//! binary edge list still requires a full [`GraphBuilder`] rebuild on
//! load (CSR counting sort, weight-descending sort, threshold
//! precomputation), a container stores every derived array in the
//! graph's exact in-memory byte layout: `left_offsets`, adjacency,
//! edge endpoints, weights, probabilities, the fixed-point `accept`
//! thresholds, the §V-B `edges_by_weight_desc` order with its gathered
//! weight/threshold arrays, and the degree-rank relabeling. Attaching a
//! container is therefore a memcpy (or an mmap) per section, not a
//! parse — the difference between milliseconds and minutes at the
//! paper's 39.5 M-edge Protein scale, and the substrate the serving
//! registry's lazy materialization and eviction are built on.
//!
//! # File layout
//!
//! ```text
//! magic      "UBGCONT1"                                  8 bytes
//! version    u32 LE                                      4 bytes
//! n_sections u32 LE                                      4 bytes
//! entries    n × { id u32 | offset u64 | len u64 | section_checksum u64 }
//! header_sum fnv1a64 of all preceding header bytes       8 bytes
//! sections   raw little-endian array images at the recorded offsets
//! ```
//!
//! Every section carries its own checksum — [`section_checksum`], an
//! id-seeded word-stride FNV-1a chosen so verifying tens of megabytes
//! costs milliseconds, not tens of them — and the header checksum
//! covers the section table (transitively, via the per-section sums,
//! the whole file) — `header_sum` doubles as the container's *content
//! checksum*, the cheap identity used by checkpoint manifests and
//! cluster registration to prove two attachments see the same bytes.
//! Readers skip section ids they do not recognize, so future versions
//! can append sections without breaking old binaries.
//!
//! # Determinism
//!
//! [`ContainerReader::materialize`] re-validates every structural
//! invariant the solvers index by (CSR offset monotonicity, adjacency
//! sortedness and cross-consistency with the endpoint arrays,
//! permutation-ness of the derived orders, `accept[e] =
//! ⌈p(e)·2⁵³⌉`). A container that materializes at all therefore yields
//! a graph indistinguishable from the builder's output, and a graph
//! written by [`write_container`] round-trips bit-identically —
//! which is what lets a serving registry drop and re-attach a graph
//! between solves without perturbing a single sampled bit.

use crate::codec::{fnv1a64, CodecError};
use crate::graph::{Adj, UncertainBipartiteGraph};
use crate::types::EdgeId;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening a graph container file.
pub const CONTAINER_MAGIC: &[u8; 8] = b"UBGCONT1";

/// Newest container version this build writes and understands.
pub const CONTAINER_VERSION: u32 = 1;

/// Section table entry size in bytes: id + offset + len + checksum.
const ENTRY_BYTES: usize = 4 + 8 + 8 + 8;

/// Hard cap on the section count a reader will accept. Generous
/// forward-compatibility headroom (we write 15) while bounding the
/// header allocation a hostile count can force to under 2 MiB.
const MAX_SECTIONS: u32 = 1 << 16;

// Section ids. Raw array images unless noted.
const SEC_META: u32 = 1; // num_left, num_right, num_edges (3 × u64)
const SEC_LEFT_OFFSETS: u32 = 2; // u32 × (|L|+1)
const SEC_LEFT_ADJ: u32 = 3; // (nbr u32, edge u32) × |E|
const SEC_RIGHT_OFFSETS: u32 = 4; // u32 × (|R|+1)
const SEC_RIGHT_ADJ: u32 = 5; // (nbr u32, edge u32) × |E|
const SEC_EDGE_LEFT: u32 = 6; // u32 × |E|
const SEC_EDGE_RIGHT: u32 = 7; // u32 × |E|
const SEC_WEIGHTS: u32 = 8; // f64 bits × |E|
const SEC_PROBS: u32 = 9; // f64 bits × |E|
const SEC_ACCEPT: u32 = 10; // u64 × |E|
const SEC_DESC_ORDER: u32 = 11; // u32 × |E| (edge ids, weight-descending)
const SEC_DESC_WEIGHTS: u32 = 12; // f64 bits × |E| (gathered)
const SEC_DESC_ACCEPT: u32 = 13; // u64 × |E| (gathered)
const SEC_LEFT_RANK: u32 = 14; // u32 × |L|
const SEC_LEFT_BY_RANK: u32 = 15; // u32 × |L|

/// The full set of sections a version-1 writer emits, in file order.
const WRITE_ORDER: [u32; 15] = [
    SEC_META,
    SEC_LEFT_OFFSETS,
    SEC_LEFT_ADJ,
    SEC_RIGHT_OFFSETS,
    SEC_RIGHT_ADJ,
    SEC_EDGE_LEFT,
    SEC_EDGE_RIGHT,
    SEC_WEIGHTS,
    SEC_PROBS,
    SEC_ACCEPT,
    SEC_DESC_ORDER,
    SEC_DESC_WEIGHTS,
    SEC_DESC_ACCEPT,
    SEC_LEFT_RANK,
    SEC_LEFT_BY_RANK,
];

/// Errors from container reading and writing. Never a panic: container
/// files are untrusted bytes from disk.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The bytes are not a well-formed container (bad magic, future
    /// version, checksum mismatch, truncation, invariant violation).
    Format(CodecError),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Format(e) => write!(f, "container format error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<CodecError> for StorageError {
    fn from(e: CodecError) -> Self {
        StorageError::Format(e)
    }
}

fn invalid(msg: impl Into<String>) -> StorageError {
    StorageError::Format(CodecError::Invalid(msg.into()))
}

/// Per-section payload checksum: FNV-1a over 8-byte little-endian
/// words, seeded with the section id and the payload length (the
/// trailing partial word is zero-padded; the absorbed length makes the
/// padding unambiguous).
///
/// Two properties matter here. Seeding with the *id* binds each sum to
/// its table slot, so a resealed header cannot swap two same-length
/// section payloads without forging new sums — the checksum, not just
/// structural validation, refuses the splice. And striding a word at a
/// time keeps verification memory-bound rather than byte-loop-bound:
/// attach speed is part of this format's contract (the perf-smoke CI
/// gate requires container attach ≥10× faster than a text re-parse),
/// and the byte-serial [`fnv1a64`] costs more than the decode it
/// guards. The header checksum stays plain `fnv1a64` — it covers a few
/// hundred bytes and its value is the container's public identity.
pub fn section_checksum(id: u32, payload: &[u8]) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = (BASIS ^ u64::from(id)).wrapping_mul(PRIME);
    h = (h ^ payload.len() as u64).wrapping_mul(PRIME);
    let mut words = payload.chunks_exact(8);
    for w in &mut words {
        h = (h ^ u64::from_le_bytes(w.try_into().unwrap())).wrapping_mul(PRIME);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    h
}

/// Graph dimensions, readable from the header + META section alone —
/// i.e. without materializing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerMeta {
    /// Number of left vertices `|L|`.
    pub num_left: u64,
    /// Number of right vertices `|R|`.
    pub num_right: u64,
    /// Number of edges `|E|`.
    pub num_edges: u64,
}

/// One parsed section-table entry.
#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    id: u32,
    offset: u64,
    len: u64,
    checksum: u64,
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn push_u32s(buf: &mut Vec<u8>, v: &[u32]) {
    buf.reserve(v.len() * 4);
    for &x in v {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn push_u64s(buf: &mut Vec<u8>, v: &[u64]) {
    buf.reserve(v.len() * 8);
    for &x in v {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn push_f64s(buf: &mut Vec<u8>, v: &[f64]) {
    buf.reserve(v.len() * 8);
    for &x in v {
        buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

fn push_adjs(buf: &mut Vec<u8>, v: &[Adj]) {
    buf.reserve(v.len() * 8);
    for a in v {
        buf.extend_from_slice(&a.nbr.to_le_bytes());
        buf.extend_from_slice(&a.edge.0.to_le_bytes());
    }
}

/// Serializes one section's payload into `buf` (cleared first).
fn encode_section(g: &UncertainBipartiteGraph, id: u32, buf: &mut Vec<u8>) {
    buf.clear();
    match id {
        SEC_META => {
            push_u64s(
                buf,
                &[
                    g.num_left() as u64,
                    g.num_right() as u64,
                    g.num_edges() as u64,
                ],
            );
        }
        SEC_LEFT_OFFSETS => push_u32s(buf, &g.left_offsets),
        SEC_LEFT_ADJ => push_adjs(buf, &g.left_adj),
        SEC_RIGHT_OFFSETS => push_u32s(buf, &g.right_offsets),
        SEC_RIGHT_ADJ => push_adjs(buf, &g.right_adj),
        SEC_EDGE_LEFT => push_u32s(buf, &g.edge_left),
        SEC_EDGE_RIGHT => push_u32s(buf, &g.edge_right),
        SEC_WEIGHTS => push_f64s(buf, &g.weights),
        SEC_PROBS => push_f64s(buf, &g.probs),
        SEC_ACCEPT => push_u64s(buf, &g.accept),
        SEC_DESC_ORDER => push_u32s(buf, &g.edges_by_weight_desc),
        SEC_DESC_WEIGHTS => push_f64s(buf, &g.desc_weights),
        SEC_DESC_ACCEPT => push_u64s(buf, &g.desc_accept),
        SEC_LEFT_RANK => push_u32s(buf, &g.left_rank),
        SEC_LEFT_BY_RANK => push_u32s(buf, &g.left_by_rank),
        _ => unreachable!("unknown section id {id} in writer"),
    }
}

/// Writes `g` as a container stream. Two encode passes keep peak
/// memory at one section (the header needs every section's length and
/// checksum before the first payload byte can be emitted).
pub fn write_container<W: Write>(
    g: &UncertainBipartiteGraph,
    mut w: W,
) -> Result<(), StorageError> {
    // Pass 1: lengths + checksums.
    let mut buf = Vec::new();
    let mut entries = Vec::with_capacity(WRITE_ORDER.len());
    let header_len = 8 + 4 + 4 + WRITE_ORDER.len() * ENTRY_BYTES + 8;
    let mut offset = header_len as u64;
    for &id in &WRITE_ORDER {
        encode_section(g, id, &mut buf);
        entries.push(SectionEntry {
            id,
            offset,
            len: buf.len() as u64,
            checksum: section_checksum(id, &buf),
        });
        offset += buf.len() as u64;
    }

    let mut header = Vec::with_capacity(header_len);
    header.extend_from_slice(CONTAINER_MAGIC);
    header.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
    header.extend_from_slice(&(WRITE_ORDER.len() as u32).to_le_bytes());
    for e in &entries {
        header.extend_from_slice(&e.id.to_le_bytes());
        header.extend_from_slice(&e.offset.to_le_bytes());
        header.extend_from_slice(&e.len.to_le_bytes());
        header.extend_from_slice(&e.checksum.to_le_bytes());
    }
    let header_sum = fnv1a64(&header);
    header.extend_from_slice(&header_sum.to_le_bytes());
    debug_assert_eq!(header.len(), header_len);
    w.write_all(&header)?;

    // Pass 2: payloads, in table order.
    for &id in &WRITE_ORDER {
        encode_section(g, id, &mut buf);
        w.write_all(&buf)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` as a container file at `path` (buffered) and returns the
/// container's content checksum.
pub fn write_container_path(g: &UncertainBipartiteGraph, path: &Path) -> Result<u64, StorageError> {
    let file = File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_container(g, &mut w)?;
    w.into_inner()
        .map_err(|e| StorageError::Io(e.into_error()))?;
    // The checksum is a pure function of the header we just wrote;
    // re-deriving it from disk also proves the file landed intact.
    ContainerReader::open(path).map(|r| r.content_checksum())
}

// ---------------------------------------------------------------------------
// mmap (unix) with a portable streamed fallback
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod mm {
    //! Minimal read-only mmap binding. `std` already links the platform
    //! C library on unix, so declaring the two symbols we need avoids a
    //! crate dependency.
    use std::fs::File;
    use std::os::fd::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A whole-file read-only private mapping.
    pub struct Mmap {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is read-only and owned; sharing &Mmap across threads
    // only ever reads the mapped bytes.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file`; `None` when the kernel refuses
        /// (callers fall back to streamed reads).
        pub fn map(file: &File, len: usize) -> Option<Mmap> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                return None;
            }
            Some(Mmap {
                ptr: ptr as *mut u8,
                len,
            })
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr as *mut core::ffi::c_void, self.len);
            }
        }
    }
}

/// One section's bytes: a zero-copy slice of the mapping, or an owned
/// buffer streamed from the file.
enum SectionData<'m> {
    #[cfg(unix)]
    Mapped(&'m [u8]),
    Owned(Vec<u8>),
    #[cfg(not(unix))]
    _Phantom(std::marker::PhantomData<&'m ()>),
}

impl SectionData<'_> {
    fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            SectionData::Mapped(s) => s,
            SectionData::Owned(v) => v,
            #[cfg(not(unix))]
            SectionData::_Phantom(_) => &[],
        }
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// A cheap, verified attachment to a container file.
///
/// [`ContainerReader::open`] reads and checks only the header (magic,
/// version, section-table bounds, header checksum) — a few hundred
/// bytes regardless of graph size — so a serving registry can attach
/// thousands of containers without loading any of them.
/// [`ContainerReader::materialize`] then loads, verifies, and
/// validates every section into a fully resident
/// [`UncertainBipartiteGraph`].
pub struct ContainerReader {
    path: PathBuf,
    meta: ContainerMeta,
    sections: Vec<SectionEntry>,
    content_checksum: u64,
}

impl ContainerReader {
    /// Attaches to the container at `path`: verifies the header and
    /// META section, leaving all payload sections untouched on disk.
    pub fn open(path: &Path) -> Result<ContainerReader, StorageError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();

        let mut fixed = [0u8; 16];
        read_exact_or_truncated(&mut file, &mut fixed)?;
        if &fixed[..8] != CONTAINER_MAGIC {
            return Err(StorageError::Format(CodecError::BadMagic));
        }
        let version = u32::from_le_bytes(fixed[8..12].try_into().unwrap());
        if version > CONTAINER_VERSION {
            return Err(StorageError::Format(CodecError::BadVersion(version)));
        }
        let n_sections = u32::from_le_bytes(fixed[12..16].try_into().unwrap());
        if n_sections > MAX_SECTIONS {
            return Err(invalid(format!("section count {n_sections} over cap")));
        }
        let mut rest = vec![0u8; n_sections as usize * ENTRY_BYTES + 8];
        read_exact_or_truncated(&mut file, &mut rest)?;

        // Header checksum covers magic..table; the trailing u64 stores it.
        let (table, sum_bytes) = rest.split_at(rest.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        let mut hashed = fixed.to_vec();
        hashed.extend_from_slice(table);
        if fnv1a64(&hashed) != stored {
            return Err(StorageError::Format(CodecError::BadChecksum));
        }

        let header_len = 16 + rest.len();
        let mut sections = Vec::with_capacity(n_sections as usize);
        for chunk in table.chunks_exact(ENTRY_BYTES) {
            let entry = SectionEntry {
                id: u32::from_le_bytes(chunk[0..4].try_into().unwrap()),
                offset: u64::from_le_bytes(chunk[4..12].try_into().unwrap()),
                len: u64::from_le_bytes(chunk[12..20].try_into().unwrap()),
                checksum: u64::from_le_bytes(chunk[20..28].try_into().unwrap()),
            };
            let end = entry
                .offset
                .checked_add(entry.len)
                .ok_or_else(|| invalid("section bounds overflow"))?;
            if entry.offset < header_len as u64 || end > file_len {
                return Err(invalid(format!(
                    "section {} [{}, {end}) outside file of {file_len} bytes",
                    entry.id, entry.offset
                )));
            }
            if entry.id <= SEC_LEFT_BY_RANK
                && sections.iter().any(|e: &SectionEntry| e.id == entry.id)
            {
                return Err(invalid(format!("duplicate section id {}", entry.id)));
            }
            sections.push(entry);
        }

        let mut reader = ContainerReader {
            path: path.to_path_buf(),
            meta: ContainerMeta {
                num_left: 0,
                num_right: 0,
                num_edges: 0,
            },
            sections,
            content_checksum: stored,
        };

        // META is tiny; read and verify it eagerly so dimensions are
        // available without materializing.
        let meta_entry = reader.require(SEC_META)?;
        if meta_entry.len != 24 {
            return Err(invalid("META section must be 24 bytes"));
        }
        let mut meta_bytes = [0u8; 24];
        file.seek(SeekFrom::Start(meta_entry.offset))?;
        read_exact_or_truncated(&mut file, &mut meta_bytes)?;
        if section_checksum(SEC_META, &meta_bytes) != meta_entry.checksum {
            return Err(StorageError::Format(CodecError::BadChecksum));
        }
        let nl = u64::from_le_bytes(meta_bytes[0..8].try_into().unwrap());
        let nr = u64::from_le_bytes(meta_bytes[8..16].try_into().unwrap());
        let m = u64::from_le_bytes(meta_bytes[16..24].try_into().unwrap());
        if nl > u32::MAX as u64 || nr > u32::MAX as u64 || m > u32::MAX as u64 {
            return Err(invalid("graph exceeds u32 index space"));
        }
        reader.meta = ContainerMeta {
            num_left: nl,
            num_right: nr,
            num_edges: m,
        };
        Ok(reader)
    }

    /// Graph dimensions, available without materialization.
    pub fn meta(&self) -> ContainerMeta {
        self.meta
    }

    /// The container's content checksum: the header FNV-1a sum, which
    /// (through the per-section checksums in the table) commits to
    /// every payload byte. Two containers with equal checksums
    /// materialize to bit-identical graphs.
    pub fn content_checksum(&self) -> u64 {
        self.content_checksum
    }

    /// Path this reader is attached to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn require(&self, id: u32) -> Result<SectionEntry, StorageError> {
        self.sections
            .iter()
            .find(|e| e.id == id)
            .copied()
            .ok_or_else(|| invalid(format!("missing required section id {id}")))
    }

    /// Loads, verifies, and validates every section into a fully
    /// resident graph. Uses a whole-file mmap when the platform grants
    /// one, streaming sections individually otherwise; either way the
    /// returned graph owns its memory and never aliases the file.
    ///
    /// Above [`PARALLEL_EDGE_CUTOFF`] edges, section verification,
    /// decoding, and structural validation fan out over scoped
    /// threads: every per-section and per-pass unit is a pure function
    /// of the mapped bytes, so the result is bit-identical to the
    /// serial path — only the wall clock changes. That concurrency is
    /// what holds up the attach-vs-reparse contract CI enforces.
    pub fn materialize(&self) -> Result<UncertainBipartiteGraph, StorageError> {
        let mut file = File::open(&self.path)?;
        let file_len = file.metadata()?.len();
        // The file may have been swapped since open(); all bounds were
        // validated against the open()-time length, so re-check.
        for e in &self.sections {
            if e.offset + e.len > file_len {
                return Err(invalid("container shrank since attach"));
            }
        }
        #[cfg(unix)]
        let map = mm::Mmap::map(&file, file_len as usize);
        #[cfg(not(unix))]
        let map: Option<()> = None;

        let mut fetch = |id: u32| -> Result<(SectionData<'_>, u64), StorageError> {
            let e = self.require(id)?;
            #[cfg(unix)]
            if let Some(m) = &map {
                let s = &m.bytes()[e.offset as usize..(e.offset + e.len) as usize];
                return Ok((SectionData::Mapped(s), e.checksum));
            }
            let _ = &map;
            let mut buf = vec![0u8; e.len as usize];
            file.seek(SeekFrom::Start(e.offset))?;
            read_exact_or_truncated(&mut file, &mut buf)?;
            Ok((SectionData::Owned(buf), e.checksum))
        };

        let nl = self.meta.num_left as usize;
        let nr = self.meta.num_right as usize;
        let m = self.meta.num_edges as usize;

        // Fetch every payload first (checksums deferred to the decode
        // groups below, where they can run concurrently).
        let s_lo = fetch(SEC_LEFT_OFFSETS)?;
        let s_la = fetch(SEC_LEFT_ADJ)?;
        let s_ro = fetch(SEC_RIGHT_OFFSETS)?;
        let s_ra = fetch(SEC_RIGHT_ADJ)?;
        let s_el = fetch(SEC_EDGE_LEFT)?;
        let s_er = fetch(SEC_EDGE_RIGHT)?;
        let s_w = fetch(SEC_WEIGHTS)?;
        let s_p = fetch(SEC_PROBS)?;
        let s_a = fetch(SEC_ACCEPT)?;
        let s_do = fetch(SEC_DESC_ORDER)?;
        let s_dw = fetch(SEC_DESC_WEIGHTS)?;
        let s_da = fetch(SEC_DESC_ACCEPT)?;
        let s_lr = fetch(SEC_LEFT_RANK)?;
        let s_lb = fetch(SEC_LEFT_BY_RANK)?;

        fn verified<'s>(
            id: u32,
            (data, sum): &'s (SectionData<'_>, u64),
        ) -> Result<&'s [u8], StorageError> {
            let s = data.as_slice();
            if section_checksum(id, s) != *sum {
                return Err(StorageError::Format(CodecError::BadChecksum));
            }
            Ok(s)
        }

        // Decode groups, balanced to roughly equal bytes per thread.
        type R<T> = Result<T, StorageError>;
        let g_left = || -> R<_> {
            Ok((
                decode_adjs(verified(SEC_LEFT_ADJ, &s_la)?, m, "left_adj")?,
                decode_u32s(verified(SEC_EDGE_LEFT, &s_el)?, m, "edge_left")?,
            ))
        };
        let g_right = || -> R<_> {
            Ok((
                decode_adjs(verified(SEC_RIGHT_ADJ, &s_ra)?, m, "right_adj")?,
                decode_u32s(verified(SEC_EDGE_RIGHT, &s_er)?, m, "edge_right")?,
            ))
        };
        let g_dist = || -> R<_> {
            Ok((
                decode_f64s(verified(SEC_WEIGHTS, &s_w)?, m, "weights")?,
                decode_f64s(verified(SEC_PROBS, &s_p)?, m, "probs")?,
            ))
        };
        let g_accept = || -> R<_> {
            Ok((
                decode_u64s(verified(SEC_ACCEPT, &s_a)?, m, "accept")?,
                decode_u64s(verified(SEC_DESC_ACCEPT, &s_da)?, m, "desc_accept")?,
            ))
        };
        let g_desc = || -> R<_> {
            Ok((
                decode_u32s(verified(SEC_DESC_ORDER, &s_do)?, m, "desc_order")?,
                decode_f64s(verified(SEC_DESC_WEIGHTS, &s_dw)?, m, "desc_weights")?,
            ))
        };
        let g_vertex = || -> R<_> {
            Ok((
                decode_u32s(verified(SEC_LEFT_OFFSETS, &s_lo)?, nl + 1, "left_offsets")?,
                decode_u32s(verified(SEC_RIGHT_OFFSETS, &s_ro)?, nr + 1, "right_offsets")?,
                decode_u32s(verified(SEC_LEFT_RANK, &s_lr)?, nl, "left_rank")?,
                decode_u32s(verified(SEC_LEFT_BY_RANK, &s_lb)?, nl, "left_by_rank")?,
            ))
        };

        let (
            (left_adj, edge_left),
            (right_adj, edge_right),
            (weights, probs),
            (accept, desc_accept),
            (edges_by_weight_desc, desc_weights),
            (left_offsets, right_offsets, left_rank, left_by_rank),
        ) = if fan_out(m) {
            std::thread::scope(|sc| {
                let h_left = sc.spawn(g_left);
                let h_right = sc.spawn(g_right);
                let h_dist = sc.spawn(g_dist);
                let h_accept = sc.spawn(g_accept);
                let h_desc = sc.spawn(g_desc);
                let vertex = g_vertex()?;
                Ok::<_, StorageError>((
                    h_left.join().unwrap()?,
                    h_right.join().unwrap()?,
                    h_dist.join().unwrap()?,
                    h_accept.join().unwrap()?,
                    h_desc.join().unwrap()?,
                    vertex,
                ))
            })?
        } else {
            (
                g_left()?,
                g_right()?,
                g_dist()?,
                g_accept()?,
                g_desc()?,
                g_vertex()?,
            )
        };

        let g = UncertainBipartiteGraph {
            left_offsets,
            left_adj,
            right_offsets,
            right_adj,
            edge_left,
            edge_right,
            weights,
            probs,
            accept,
            edges_by_weight_desc,
            desc_weights,
            desc_accept,
            left_rank,
            left_by_rank,
        };
        validate_graph(&g)?;
        Ok(g)
    }
}

/// Edge count above which [`ContainerReader::materialize`] fans
/// decoding and validation out over scoped threads. Below it the
/// thread-spawn overhead dwarfs the work; above it the sections are
/// megabytes and the fan-out is what meets the attach-speed contract.
const PARALLEL_EDGE_CUTOFF: usize = 1 << 16;

/// Whether materialization of an `m`-edge graph should fan out:
/// enough work to amortize thread spawns, and more than one hardware
/// thread to run them on.
fn fan_out(m: usize) -> bool {
    m >= PARALLEL_EDGE_CUTOFF && std::thread::available_parallelism().is_ok_and(|p| p.get() > 1)
}

fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), StorageError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StorageError::Format(CodecError::Truncated)
        } else {
            StorageError::Io(e)
        }
    })
}

fn decode_u32s(bytes: &[u8], expect: usize, what: &str) -> Result<Vec<u32>, StorageError> {
    if bytes.len() != expect * 4 {
        return Err(invalid(format!(
            "{what}: {} bytes, expected {}",
            bytes.len(),
            expect * 4
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

fn decode_u64s(bytes: &[u8], expect: usize, what: &str) -> Result<Vec<u64>, StorageError> {
    if bytes.len() != expect * 8 {
        return Err(invalid(format!(
            "{what}: {} bytes, expected {}",
            bytes.len(),
            expect * 8
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

fn decode_f64s(bytes: &[u8], expect: usize, what: &str) -> Result<Vec<f64>, StorageError> {
    if bytes.len() != expect * 8 {
        return Err(invalid(format!(
            "{what}: {} bytes, expected {}",
            bytes.len(),
            expect * 8
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
        .collect())
}

fn decode_adjs(bytes: &[u8], expect: usize, what: &str) -> Result<Vec<Adj>, StorageError> {
    if bytes.len() != expect * 8 {
        return Err(invalid(format!(
            "{what}: {} bytes, expected {}",
            bytes.len(),
            expect * 8
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| Adj {
            nbr: u32::from_le_bytes(c[0..4].try_into().unwrap()),
            edge: EdgeId(u32::from_le_bytes(c[4..8].try_into().unwrap())),
        })
        .collect())
}

/// Re-validates every structural invariant a builder-produced graph
/// satisfies. O(|E| + |V|), run once per materialization; this is what
/// makes the eviction determinism argument airtight — any container
/// that materializes is indistinguishable from a built graph.
///
/// The five passes are independent reads of disjoint invariants, so
/// above [`PARALLEL_EDGE_CUTOFF`] they run on scoped threads; each
/// pass is written to fail (never panic) on inputs another pass would
/// reject, since the serial ordering no longer protects it.
fn validate_graph(g: &UncertainBipartiteGraph) -> Result<(), StorageError> {
    let nl = g.num_left();
    let nr = g.num_right();
    let m = g.num_edges();

    // Pass 1: offsets, endpoint ranges, and the edge-domain scalars —
    // weights and probabilities within the builder's domain, the
    // fixed-point thresholds exactly re-derivable.
    let domain = || -> Result<(), StorageError> {
        check_offsets(&g.left_offsets, m, "left_offsets")?;
        check_offsets(&g.right_offsets, m, "right_offsets")?;
        for (i, (&u, &v)) in g.edge_left.iter().zip(&g.edge_right).enumerate() {
            if u as usize >= nl || v as usize >= nr {
                return Err(invalid(format!(
                    "edge {i} endpoints ({u},{v}) out of range"
                )));
            }
        }
        for i in 0..m {
            let w = g.weights[i];
            if !w.is_finite() || w < 0.0 {
                return Err(invalid(format!("edge {i}: weight {w} invalid")));
            }
            let p = g.probs[i];
            if !(0.0..=1.0).contains(&p) {
                return Err(invalid(format!("edge {i}: probability {p} invalid")));
            }
            if g.accept[i] != crate::sample::fixed_point_threshold(p) {
                return Err(invalid(format!("edge {i}: accept threshold mismatch")));
            }
        }
        Ok(())
    };

    // Passes 2 + 3: adjacency — strictly neighbor-sorted lists,
    // cross-consistent with the endpoint arrays, each edge appearing
    // exactly once per side.
    let left_adj = || {
        check_adjacency(
            &g.left_offsets,
            &g.left_adj,
            nr,
            m,
            |e, owner, nbr| g.edge_left[e] == owner && g.edge_right[e] == nbr,
            "left_adj",
        )
    };
    let right_adj = || {
        check_adjacency(
            &g.right_offsets,
            &g.right_adj,
            nl,
            m,
            |e, owner, nbr| g.edge_right[e] == owner && g.edge_left[e] == nbr,
            "right_adj",
        )
    };

    // Pass 4: §V-B order — a permutation, correctly sorted, with the
    // gathered arrays bit-exact. No explicit permutation bookkeeping:
    // the order loop below enforces *strict* (weight desc, id asc)
    // order, which makes all m entries pairwise distinct, and the
    // gather loop bounds every entry below m — m distinct values in
    // [0, m) is a permutation.
    let desc = || -> Result<(), StorageError> {
        if g.edges_by_weight_desc.len() != m {
            return Err(invalid("edges_by_weight_desc sized wrong"));
        }
        for (i, &e) in g.edges_by_weight_desc.iter().enumerate() {
            if e as usize >= m {
                return Err(invalid(format!("edges_by_weight_desc[{i}] out of range")));
            }
            if g.desc_weights[i].to_bits() != g.weights[e as usize].to_bits() {
                return Err(invalid(format!(
                    "desc_weights[{i}] not gathered from weights"
                )));
            }
            if g.desc_accept[i] != g.accept[e as usize] {
                return Err(invalid(format!(
                    "desc_accept[{i}] not gathered from accept"
                )));
            }
        }
        for w in g.edges_by_weight_desc.windows(2) {
            let (a, b) = (w[0], w[1]);
            let ord = g.weights[b as usize]
                .total_cmp(&g.weights[a as usize])
                .then(a.cmp(&b));
            if ord != std::cmp::Ordering::Less {
                return Err(invalid("edges_by_weight_desc not in §V-B order"));
            }
        }
        Ok(())
    };

    // Pass 5: degree-rank relabeling — inverse permutations in
    // (degree desc, id asc) order. Degrees go through i64 so a
    // non-monotonic offsets array (pass 1's to reject) merely yields
    // negative degrees here instead of underflowing.
    let ranks = || -> Result<(), StorageError> {
        if g.left_rank.len() != nl || g.left_by_rank.len() != nl {
            return Err(invalid("left rank arrays sized wrong"));
        }
        check_permutation(&g.left_by_rank, nl, "left_by_rank")?;
        for (r, &u) in g.left_by_rank.iter().enumerate() {
            if g.left_rank[u as usize] as usize != r {
                return Err(invalid("left_rank is not the inverse of left_by_rank"));
            }
        }
        let degree =
            |u: u32| g.left_offsets[u as usize + 1] as i64 - g.left_offsets[u as usize] as i64;
        for w in g.left_by_rank.windows(2) {
            let (a, b) = (w[0], w[1]);
            if !(degree(a) > degree(b) || (degree(a) == degree(b) && a < b)) {
                return Err(invalid("left_by_rank not in (degree desc, id asc) order"));
            }
        }
        Ok(())
    };

    if fan_out(m) {
        std::thread::scope(|sc| {
            let h_domain = sc.spawn(domain);
            let h_left = sc.spawn(left_adj);
            let h_right = sc.spawn(right_adj);
            let h_desc = sc.spawn(desc);
            ranks()?;
            h_domain.join().unwrap()?;
            h_left.join().unwrap()?;
            h_right.join().unwrap()?;
            h_desc.join().unwrap()
        })
    } else {
        domain()?;
        left_adj()?;
        right_adj()?;
        desc()?;
        ranks()
    }
}

fn check_offsets(offsets: &[u32], m: usize, what: &str) -> Result<(), StorageError> {
    if offsets.first() != Some(&0) {
        return Err(invalid(format!("{what} must start at 0")));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(invalid(format!("{what} not monotonic")));
    }
    if *offsets.last().unwrap() as usize != m {
        return Err(invalid(format!("{what} must end at |E|")));
    }
    Ok(())
}

/// Checks one side's adjacency: every list strictly neighbor-sorted,
/// every entry in range and agreeing with the endpoint arrays.
///
/// "Each edge appears exactly once" needs no bookkeeping: `adj` has
/// exactly `m` entries (enforced at decode), and two entries naming
/// the same edge `e` would both have to carry `e`'s endpoints to pass
/// `endpoint_ok` — same owner, same neighbor — which puts them in the
/// same list with equal `nbr`, violating strict sortedness. So the
/// entry→edge map is injective on `m` entries over `m` edges: a
/// bijection, with no `seen` bitmap (whose random-access stores
/// dominated this pass) required.
fn check_adjacency(
    offsets: &[u32],
    adj: &[Adj],
    nbr_bound: usize,
    m: usize,
    endpoint_ok: impl Fn(usize, u32, u32) -> bool,
    what: &str,
) -> Result<(), StorageError> {
    for owner in 0..offsets.len() - 1 {
        // May run concurrently with check_offsets, so a malformed
        // offsets array must fail here rather than slice out of range.
        let list = adj
            .get(offsets[owner] as usize..offsets[owner + 1] as usize)
            .ok_or_else(|| invalid(format!("{what}: offsets of {owner} out of bounds")))?;
        for (i, a) in list.iter().enumerate() {
            if a.nbr as usize >= nbr_bound || a.edge.index() >= m {
                return Err(invalid(format!("{what}: entry out of range")));
            }
            if i > 0 && list[i - 1].nbr >= a.nbr {
                return Err(invalid(format!(
                    "{what}: list of {owner} not strictly sorted"
                )));
            }
            if !endpoint_ok(a.edge.index(), owner as u32, a.nbr) {
                return Err(invalid(format!(
                    "{what}: entry disagrees with endpoint arrays"
                )));
            }
        }
    }
    Ok(())
}

fn check_permutation(v: &[u32], n: usize, what: &str) -> Result<(), StorageError> {
    if v.len() != n {
        return Err(invalid(format!("{what} sized wrong")));
    }
    let mut seen = vec![false; n];
    for &x in v {
        if x as usize >= n || std::mem::replace(&mut seen[x as usize], true) {
            return Err(invalid(format!("{what} is not a permutation")));
        }
    }
    Ok(())
}

/// Attach + materialize in one call: the whole-graph read path used by
/// the CLI and [`io::read_auto`](crate::io::read_auto).
pub fn read_container_path(path: &Path) -> Result<UncertainBipartiteGraph, StorageError> {
    ContainerReader::open(path)?.materialize()
}

/// Peeks at `path` and returns the container content checksum when it
/// is a well-formed container, `None` otherwise (wrong magic,
/// unreadable, corrupt header). Used by cluster registration to stamp
/// broadcast specs without materializing.
pub fn peek_container_checksum(path: &Path) -> Option<u64> {
    ContainerReader::open(path)
        .ok()
        .map(|r| r.content_checksum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::types::{Left, Right};

    fn demo_graph() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mpmb_storage_{}_{name}.ubgc", std::process::id()))
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let g = demo_graph();
        let path = tmp("roundtrip");
        let sum = write_container_path(&g, &path).unwrap();
        let r = ContainerReader::open(&path).unwrap();
        assert_eq!(r.content_checksum(), sum);
        assert_eq!(
            r.meta(),
            ContainerMeta {
                num_left: 2,
                num_right: 3,
                num_edges: 6
            }
        );
        let g2 = r.materialize().unwrap();
        assert_eq!(g2.left_offsets, g.left_offsets);
        assert_eq!(g2.left_adj, g.left_adj);
        assert_eq!(g2.right_offsets, g.right_offsets);
        assert_eq!(g2.right_adj, g.right_adj);
        assert_eq!(g2.edge_left, g.edge_left);
        assert_eq!(g2.edge_right, g.edge_right);
        assert_eq!(g2.edges_by_weight_desc, g.edges_by_weight_desc);
        assert_eq!(g2.accept, g.accept);
        assert_eq!(g2.desc_accept, g.desc_accept);
        assert_eq!(g2.left_rank, g.left_rank);
        assert_eq!(g2.left_by_rank, g.left_by_rank);
        for i in 0..g.num_edges() {
            assert_eq!(g2.weights[i].to_bits(), g.weights[i].to_bits());
            assert_eq!(g2.probs[i].to_bits(), g.probs[i].to_bits());
            assert_eq!(g2.desc_weights[i].to_bits(), g.desc_weights[i].to_bits());
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new().build().unwrap();
        let path = tmp("empty");
        write_container_path(&g, &path).unwrap();
        let g2 = read_container_path(&path).unwrap();
        assert_eq!(g2.num_left(), 0);
        assert_eq!(g2.num_right(), 0);
        assert_eq!(g2.num_edges(), 0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn checksum_is_stable_and_content_sensitive() {
        let g = demo_graph();
        let p1 = tmp("sum1");
        let p2 = tmp("sum2");
        let s1 = write_container_path(&g, &p1).unwrap();
        let s2 = write_container_path(&g, &p2).unwrap();
        assert_eq!(s1, s2, "same graph, same checksum");
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.51).unwrap();
        let p3 = tmp("sum3");
        let s3 = write_container_path(&b.build().unwrap(), &p3).unwrap();
        assert_ne!(s1, s3, "different graph, different checksum");
        for p in [p1, p2, p3] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn peek_rejects_non_containers() {
        let path = tmp("peek");
        std::fs::write(&path, b"0 0 1.0 0.5\n").unwrap();
        assert_eq!(peek_container_checksum(&path), None);
        let _ = std::fs::remove_file(&path);
        assert_eq!(peek_container_checksum(&path), None, "missing file");
    }
}
