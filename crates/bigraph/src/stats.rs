//! Summary statistics for a graph — the quantities of the paper's
//! Table III plus what the complexity lemmas (IV.1, V.1) depend on.

use crate::graph::UncertainBipartiteGraph;
use crate::types::{Left, Right, Side};
use std::fmt;

/// Aggregate statistics of an uncertain bipartite graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|E|`.
    pub num_edges: usize,
    /// `|L|`.
    pub num_left: usize,
    /// `|R|`.
    pub num_right: usize,
    /// Maximum backbone degree on the left side.
    pub max_left_degree: usize,
    /// Maximum backbone degree on the right side.
    pub max_right_degree: usize,
    /// Minimum edge weight (0 for empty graphs).
    pub min_weight: f64,
    /// Maximum edge weight (0 for empty graphs).
    pub max_weight: f64,
    /// Mean edge weight (0 for empty graphs).
    pub mean_weight: f64,
    /// Mean edge probability (0 for empty graphs).
    pub mean_prob: f64,
    /// Lemma V.1 cost proxy `Σ_{u∈L} d̄(u)²`.
    pub sum_sq_expected_degree_left: f64,
    /// Lemma V.1 cost proxy `Σ_{v∈R} d̄(v)²`.
    pub sum_sq_expected_degree_right: f64,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &UncertainBipartiteGraph) -> Self {
        let m = g.num_edges();
        let (mut min_w, mut max_w, mut sum_w, mut sum_p) =
            (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0.0);
        for e in g.edge_ids() {
            let w = g.weight(e);
            min_w = min_w.min(w);
            max_w = max_w.max(w);
            sum_w += w;
            sum_p += g.prob(e);
        }
        if m == 0 {
            min_w = 0.0;
            max_w = 0.0;
        }
        GraphStats {
            num_edges: m,
            num_left: g.num_left(),
            num_right: g.num_right(),
            max_left_degree: (0..g.num_left())
                .map(|i| g.left_degree(Left(i as u32)))
                .max()
                .unwrap_or(0),
            max_right_degree: (0..g.num_right())
                .map(|i| g.right_degree(Right(i as u32)))
                .max()
                .unwrap_or(0),
            min_weight: min_w,
            max_weight: max_w,
            mean_weight: if m == 0 { 0.0 } else { sum_w / m as f64 },
            mean_prob: if m == 0 { 0.0 } else { sum_p / m as f64 },
            sum_sq_expected_degree_left: g.sum_sq_expected_degree(Side::Left),
            sum_sq_expected_degree_right: g.sum_sq_expected_degree(Side::Right),
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|E|={} |L|={} |R|={} deg_max=({},{}) w∈[{:.3},{:.3}] w̄={:.3} p̄={:.3}",
            self.num_edges,
            self.num_left,
            self.num_right,
            self.max_left_degree,
            self.max_right_degree,
            self.min_weight,
            self.max_weight,
            self.mean_weight,
            self.mean_prob,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_of_fig1() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        let s = GraphStats::compute(&b.build().unwrap());
        assert_eq!(s.num_edges, 6);
        assert_eq!(s.num_left, 2);
        assert_eq!(s.num_right, 3);
        assert_eq!(s.max_left_degree, 3);
        assert_eq!(s.max_right_degree, 2);
        assert_eq!(s.min_weight, 1.0);
        assert_eq!(s.max_weight, 3.0);
        assert!((s.mean_weight - 2.0).abs() < 1e-12);
        assert!((s.mean_prob - 0.55).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph_are_zero() {
        let s = GraphStats::compute(&GraphBuilder::new().build().unwrap());
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.min_weight, 0.0);
        assert_eq!(s.max_weight, 0.0);
        assert_eq!(s.mean_weight, 0.0);
        assert_eq!(s.mean_prob, 0.0);
        assert_eq!(s.max_left_degree, 0);
    }

    #[test]
    fn display_is_single_line() {
        let s = GraphStats::compute(&GraphBuilder::new().build().unwrap());
        let line = s.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("|E|=0"));
    }
}
