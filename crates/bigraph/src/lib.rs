#![warn(missing_docs)]

//! Uncertain weighted bipartite network substrate.
//!
//! This crate provides the data model the MPMB paper (ICDE 2025) is defined
//! over: an **uncertain bipartite weighted network** `G = (V=(L,R), E, p, w)`
//! (Definition 1), its deterministic **backbone graph** `H`, and **possible
//! worlds** `W_i ⊆ H` obtained by sampling each edge independently with its
//! probability (Definition 2).
//!
//! The graph is stored in compressed sparse row (CSR) form for both sides so
//! neighborhood scans are cache-friendly in the hot sampling loops of the
//! solver crate. Edge weights and probabilities live in dense parallel
//! arrays indexed by [`EdgeId`].
//!
//! # Quick example
//!
//! ```
//! use bigraph::{GraphBuilder, Left, Right};
//!
//! // The uncertain network of Figure 1(a) in the paper.
//! let mut b = GraphBuilder::new();
//! b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
//! b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
//! b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
//! b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
//! b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
//! b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
//! let g = b.build().unwrap();
//! assert_eq!(g.num_edges(), 6);
//! assert_eq!(g.left_degree(Left(0)), 3);
//! ```

pub mod bitset;
pub mod builder;
pub mod codec;
pub mod expected;
pub mod fx;
pub mod generators;
pub mod graph;
pub mod io;
pub mod priority;
pub mod sample;
pub mod stats;
pub mod storage;
pub mod transform;
pub mod types;
pub mod world;

pub use bitset::BitSet;
pub use builder::{BuildError, GraphBuilder};
pub use codec::{fnv1a64, open_frame, seal_frame, CodecError, Decoder, Encoder};
pub use graph::UncertainBipartiteGraph;
pub use priority::{degree_desc_ranks, VertexPriority};
pub use sample::{
    accept_word, fixed_point_threshold, trial_rng, LazyEdgeSampler, WorldSampler, FIXED_POINT_ONE,
};
pub use stats::GraphStats;
pub use storage::{
    peek_container_checksum, read_container_path, section_checksum, write_container,
    write_container_path, ContainerMeta, ContainerReader, StorageError, CONTAINER_MAGIC,
    CONTAINER_VERSION,
};
pub use types::{EdgeId, Left, Right, Side, Vertex, Weight};
pub use world::PossibleWorld;
