//! Possible worlds (Definition 2).
//!
//! A possible world `W_i` keeps the vertex set and weights of the backbone
//! and includes each edge `e` independently with probability `p(e)`. We
//! represent a world as a bitset over edge ids; weights and adjacency are
//! read through the backbone graph.

use crate::bitset::BitSet;
use crate::graph::UncertainBipartiteGraph;
use crate::types::{EdgeId, Left, Right};

/// A concrete possible world: a subset of the backbone's edges.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PossibleWorld {
    present: BitSet,
}

impl PossibleWorld {
    /// An empty world (no edges) over a graph with `num_edges` edges.
    pub fn empty(num_edges: usize) -> Self {
        PossibleWorld {
            present: BitSet::new(num_edges),
        }
    }

    /// The world containing every backbone edge (the backbone itself, which
    /// the related-work §II calls "a possible world containing all edges").
    pub fn full(g: &UncertainBipartiteGraph) -> Self {
        let mut w = Self::empty(g.num_edges());
        for e in g.edge_ids() {
            w.insert(e);
        }
        w
    }

    /// A world from an explicit edge list.
    pub fn from_edges(num_edges: usize, edges: &[EdgeId]) -> Self {
        let mut w = Self::empty(num_edges);
        for &e in edges {
            w.insert(e);
        }
        w
    }

    /// Domain size (number of backbone edges, not present edges).
    #[inline]
    pub fn domain(&self) -> usize {
        self.present.len()
    }

    /// Whether edge `e` exists in this world.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.present.contains(e.index())
    }

    /// Adds edge `e` to the world.
    #[inline]
    pub fn insert(&mut self, e: EdgeId) {
        self.present.insert(e.index());
    }

    /// Removes edge `e` from the world.
    #[inline]
    pub fn remove(&mut self, e: EdgeId) {
        self.present.remove(e.index());
    }

    /// Sets the presence of edge `e`.
    #[inline]
    pub fn set(&mut self, e: EdgeId, present: bool) {
        self.present.set(e.index(), present);
    }

    /// Empties the world, keeping capacity (workhorse reuse across trials).
    pub fn clear(&mut self) {
        self.present.clear();
    }

    /// Number of edges present.
    pub fn num_present(&self) -> usize {
        self.present.count_ones()
    }

    /// Iterator over present edge ids, ascending.
    pub fn present_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.present.iter_ones().map(|i| EdgeId(i as u32))
    }

    /// The probability of this world under `g` (Equation 1):
    /// `Pr(W) = Π_{e∈W} p(e) · Π_{e∉W} (1 − p(e))`.
    pub fn probability(&self, g: &UncertainBipartiteGraph) -> f64 {
        assert_eq!(self.domain(), g.num_edges(), "world/graph mismatch");
        g.edge_ids()
            .map(|e| {
                if self.contains(e) {
                    g.prob(e)
                } else {
                    1.0 - g.prob(e)
                }
            })
            .product()
    }

    /// Degree of a left vertex within this world.
    pub fn left_degree(&self, g: &UncertainBipartiteGraph, u: Left) -> usize {
        g.left_adj(u)
            .iter()
            .filter(|a| self.contains(a.edge))
            .count()
    }

    /// Degree of a right vertex within this world.
    pub fn right_degree(&self, g: &UncertainBipartiteGraph, v: Right) -> usize {
        g.right_adj(v)
            .iter()
            .filter(|a| self.contains(a.edge))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fig1b_world_probability_matches_paper() {
        // Figure 1(b): world missing only (u1,v1); the paper computes
        // (1−0.5)·0.6·0.8·0.3·0.4·0.7 = 0.02016.
        let g = fig1();
        let mut w = PossibleWorld::full(&g);
        w.remove(g.find_edge(Left(0), Right(0)).unwrap());
        assert!((w.probability(&g) - 0.02016).abs() < 1e-12);
    }

    #[test]
    fn empty_and_full_world_probabilities() {
        let g = fig1();
        let empty = PossibleWorld::empty(g.num_edges());
        let expected: f64 = g.edge_ids().map(|e| 1.0 - g.prob(e)).product();
        assert!((empty.probability(&g) - expected).abs() < 1e-15);
        let full = PossibleWorld::full(&g);
        let expected: f64 = g.edge_ids().map(|e| g.prob(e)).product();
        assert!((full.probability(&g) - expected).abs() < 1e-15);
    }

    #[test]
    fn set_insert_remove_roundtrip() {
        let g = fig1();
        let mut w = PossibleWorld::empty(g.num_edges());
        let e = EdgeId(3);
        assert!(!w.contains(e));
        w.insert(e);
        assert!(w.contains(e));
        assert_eq!(w.num_present(), 1);
        w.set(e, false);
        assert!(!w.contains(e));
        w.set(e, true);
        w.clear();
        assert_eq!(w.num_present(), 0);
    }

    #[test]
    fn world_degrees_count_present_edges_only() {
        let g = fig1();
        let mut w = PossibleWorld::empty(g.num_edges());
        w.insert(g.find_edge(Left(0), Right(0)).unwrap());
        w.insert(g.find_edge(Left(0), Right(1)).unwrap());
        assert_eq!(w.left_degree(&g, Left(0)), 2);
        assert_eq!(w.left_degree(&g, Left(1)), 0);
        assert_eq!(w.right_degree(&g, Right(0)), 1);
        assert_eq!(w.right_degree(&g, Right(2)), 0);
    }

    #[test]
    fn from_edges_constructor() {
        let g = fig1();
        let es = [EdgeId(0), EdgeId(5)];
        let w = PossibleWorld::from_edges(g.num_edges(), &es);
        assert!(w.contains(EdgeId(0)) && w.contains(EdgeId(5)));
        assert_eq!(w.num_present(), 2);
        let got: Vec<EdgeId> = w.present_edges().collect();
        assert_eq!(got, es);
    }

    #[test]
    #[should_panic(expected = "world/graph mismatch")]
    fn probability_checks_domain() {
        let g = fig1();
        let w = PossibleWorld::empty(3);
        let _ = w.probability(&g);
    }
}
