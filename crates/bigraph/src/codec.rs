//! Versioned, checksummed binary codec helpers.
//!
//! [`io`](crate::io)'s `UBGRAPH1` format established the workspace's
//! binary conventions: an 8-byte magic, little-endian fixed-width
//! integers, and length-prefixed variable records. This module factors
//! those conventions into reusable primitives — an append-only
//! [`Encoder`], a bounds-checked [`Decoder`], and a *frame* wrapper
//! (`magic | version | payload | fnv1a64 checksum`) — so durable state
//! files (solver checkpoints, manifests) get corruption detection and
//! versioning without inventing a new format each time.
//!
//! Everything is deterministic: encoding the same value twice yields
//! the same bytes, so frames can be compared and checksummed stably.

/// Errors a decode can produce. Always an error value, never a panic:
/// decoders are fed untrusted bytes from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the value needs.
    Truncated,
    /// The frame does not start with the expected magic.
    BadMagic,
    /// The frame checksum does not match its payload.
    BadChecksum,
    /// The frame version is newer than this build understands.
    BadVersion(u32),
    /// A decoded value violates an invariant (context in the message).
    Invalid(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::BadMagic => write!(f, "bad magic"),
            CodecError::BadChecksum => write!(f, "checksum mismatch"),
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::Invalid(msg) => write!(f, "invalid value: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash, the frame checksum. Not cryptographic — it
/// detects truncation and bit rot, which is all a local checkpoint
/// file needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian append-only byte sink.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian IEEE-754 bits — exact,
    /// bit-preserving round trips (the determinism contract cares about
    /// bits, not decimal renderings).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("byte string over 4 GiB"));
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked reader over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| CodecError::Invalid("non-UTF-8 string".to_string()))
    }

    /// Reads a length prefix that is about to drive a `Vec` allocation,
    /// rejecting lengths that cannot possibly fit in the remaining
    /// bytes (`min_record_bytes` per element) — a corrupted length
    /// field must not cause a giant allocation.
    pub fn len_capped(&mut self, min_record_bytes: usize) -> Result<usize, CodecError> {
        let len = self.u64()? as usize;
        if len.saturating_mul(min_record_bytes.max(1)) > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(len)
    }
}

/// Wraps `payload` in a checksummed frame:
/// `magic(8) | version(u32 LE) | len(u64 LE) | payload | fnv1a64(all preceding)`.
pub fn seal_frame(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Opens a frame sealed by [`seal_frame`]: verifies magic, length, and
/// checksum, rejects versions above `max_version`, and returns
/// `(version, payload)`.
pub fn open_frame<'a>(
    magic: &[u8; 8],
    max_version: u32,
    bytes: &'a [u8],
) -> Result<(u32, &'a [u8]), CodecError> {
    if bytes.len() < 28 {
        return Err(CodecError::Truncated);
    }
    if &bytes[..8] != magic {
        return Err(CodecError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let Some(expected_total) = len.checked_add(28) else {
        return Err(CodecError::Truncated);
    };
    if bytes.len() != expected_total {
        return Err(CodecError::Truncated);
    }
    let (framed, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if fnv1a64(framed) != stored {
        return Err(CodecError::BadChecksum);
    }
    if version > max_version {
        return Err(CodecError::BadVersion(version));
    }
    Ok((version, &framed[20..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"TESTFRM1";

    #[test]
    fn primitive_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.str("héllo");
        e.bytes(b"");
        let buf = e.into_bytes();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), b"");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn decode_is_bounds_checked() {
        let mut d = Decoder::new(&[1, 2, 3]);
        assert_eq!(d.u64(), Err(CodecError::Truncated));
        // The failed read consumed nothing usable; smaller reads still work.
        let mut d = Decoder::new(&[5, 0, 0, 0]);
        assert_eq!(d.u32().unwrap(), 5);
        assert_eq!(d.u8(), Err(CodecError::Truncated));
    }

    #[test]
    fn huge_length_prefix_is_rejected_not_allocated() {
        let mut e = Encoder::new();
        e.u64(u64::MAX / 2);
        let buf = e.into_bytes();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.len_capped(16), Err(CodecError::Truncated));
    }

    #[test]
    fn frame_round_trip() {
        let framed = seal_frame(MAGIC, 3, b"payload bytes");
        let (version, payload) = open_frame(MAGIC, 3, &framed).unwrap();
        assert_eq!(version, 3);
        assert_eq!(payload, b"payload bytes");
    }

    #[test]
    fn frame_rejects_corruption() {
        let good = seal_frame(MAGIC, 1, b"some payload");
        // Wrong magic.
        assert_eq!(open_frame(b"WRONGMAG", 1, &good), Err(CodecError::BadMagic));
        // Future version.
        assert_eq!(open_frame(MAGIC, 0, &good), Err(CodecError::BadVersion(1)));
        // Truncation, at every prefix length.
        for cut in 0..good.len() {
            assert!(open_frame(MAGIC, 1, &good[..cut]).is_err(), "cut {cut}");
        }
        // Single-bit flips anywhere in the frame.
        for byte in 8..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            assert!(open_frame(MAGIC, 1, &bad).is_err(), "flip at {byte}");
        }
        // Trailing garbage.
        let mut padded = good.clone();
        padded.push(0);
        assert_eq!(open_frame(MAGIC, 1, &padded), Err(CodecError::Truncated));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Canonical FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
