//! Fixed-capacity bitset used to represent possible worlds.
//!
//! A possible world (Definition 2) is a subset of the backbone edge set, so
//! the natural representation is one bit per [`EdgeId`](crate::EdgeId).
//! `Vec<bool>` would be 8× larger and the paper's biggest dataset has
//! 39.5 M edges, where the difference is ~35 MB per world.

/// A fixed-length bitset over `0..len`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset with all `len` bits cleared.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits (the domain size, not the popcount).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Sets bit `i` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        if value {
            self.insert(i);
        } else {
            self.remove(i);
        }
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Clears every bit, keeping capacity. Used to reuse a workhorse world
    /// buffer across Monte-Carlo trials without reallocating.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * 64;
            BitIter { word: w, base }
        })
    }

    /// Fills the set from raw word storage (low-level; used by tests).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut b = BitSet::new(130);
        assert!(!b.contains(0));
        b.insert(0);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1) && !b.contains(63) && !b.contains(128));
        b.remove(64);
        assert!(!b.contains(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn set_dispatches() {
        let mut b = BitSet::new(8);
        b.set(3, true);
        assert!(b.contains(3));
        b.set(3, false);
        assert!(!b.contains(3));
    }

    #[test]
    fn clear_resets_all() {
        let mut b = BitSet::new(200);
        for i in (0..200).step_by(3) {
            b.insert(i);
        }
        b.clear();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.len(), 200);
    }

    #[test]
    fn iter_ones_ascending_and_complete() {
        let mut b = BitSet::new(300);
        let picks = [0usize, 1, 63, 64, 65, 127, 128, 255, 299];
        for &i in &picks {
            b.insert(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, picks);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = BitSet::new(10);
        let _ = b.contains(10);
    }

    #[test]
    fn zero_length_set() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
    }
}
