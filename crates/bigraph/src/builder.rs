//! Validating builder for [`UncertainBipartiteGraph`].

use crate::graph::{Adj, UncertainBipartiteGraph};
use crate::types::{Left, Right, Weight};
use std::fmt;

/// Errors raised while constructing a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// Probability outside `[0, 1]` or non-finite.
    InvalidProbability {
        /// Offending left endpoint.
        u: Left,
        /// Offending right endpoint.
        v: Right,
        /// The rejected value.
        p: f64,
    },
    /// Weight negative or non-finite. Non-negativity is required by the
    /// §V-B pruning bound (see [`crate::types::Weight`]).
    InvalidWeight {
        /// Offending left endpoint.
        u: Left,
        /// Offending right endpoint.
        v: Right,
        /// The rejected value.
        w: Weight,
    },
    /// The same `(u, v)` pair was added twice. Definition 1 makes `E` a
    /// set, so multi-edges are rejected rather than silently merged.
    DuplicateEdge {
        /// Left endpoint of the duplicate.
        u: Left,
        /// Right endpoint of the duplicate.
        v: Right,
    },
    /// More than `u32::MAX` edges or vertices.
    TooLarge,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidProbability { u, v, p } => {
                write!(f, "edge ({u},{v}): probability {p} not in [0,1]")
            }
            BuildError::InvalidWeight { u, v, w } => {
                write!(f, "edge ({u},{v}): weight {w} not finite and non-negative")
            }
            BuildError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u},{v})"),
            BuildError::TooLarge => write!(f, "graph exceeds u32 index space"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Accumulates edges, validates them, and produces the immutable CSR graph.
///
/// Vertex counts are inferred from the largest id seen; [`GraphBuilder::reserve_vertices`]
/// can raise them for graphs with isolated trailing vertices.
#[derive(Default, Clone, Debug)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32, Weight, f64)>,
    min_left: u32,
    min_right: u32,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `n` edges.
    pub fn with_capacity(n: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(n),
            min_left: 0,
            min_right: 0,
        }
    }

    /// Ensures the built graph has at least `left` left and `right` right
    /// vertices even if no edge touches the trailing ids.
    pub fn reserve_vertices(&mut self, left: u32, right: u32) -> &mut Self {
        self.min_left = self.min_left.max(left);
        self.min_right = self.min_right.max(right);
        self
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds edge `(u, v)` with weight `w` and probability `p`.
    ///
    /// Validation is eager for weights and probabilities; duplicate
    /// detection happens in [`GraphBuilder::build`] (a sort makes it O(E log E) total
    /// instead of a per-insert hash probe).
    pub fn add_edge(&mut self, u: Left, v: Right, w: Weight, p: f64) -> Result<(), BuildError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(BuildError::InvalidProbability { u, v, p });
        }
        if !w.is_finite() || w < 0.0 {
            return Err(BuildError::InvalidWeight { u, v, w });
        }
        if self.edges.len() >= u32::MAX as usize {
            return Err(BuildError::TooLarge);
        }
        self.edges.push((u.0, v.0, w, p));
        Ok(())
    }

    /// Finalizes the graph.
    pub fn build(&self) -> Result<UncertainBipartiteGraph, BuildError> {
        let m = self.edges.len();

        let mut nl = self.min_left;
        let mut nr = self.min_right;
        for &(u, v, _, _) in &self.edges {
            if u == u32::MAX || v == u32::MAX {
                return Err(BuildError::TooLarge);
            }
            nl = nl.max(u + 1);
            nr = nr.max(v + 1);
        }

        // Duplicate detection over a sorted copy of the endpoint pairs.
        let mut pairs: Vec<(u32, u32)> = self.edges.iter().map(|&(u, v, _, _)| (u, v)).collect();
        pairs.sort_unstable();
        if let Some(w) = pairs.windows(2).find(|w| w[0] == w[1]) {
            return Err(BuildError::DuplicateEdge {
                u: Left(w[0].0),
                v: Right(w[0].1),
            });
        }

        let mut edge_left = Vec::with_capacity(m);
        let mut edge_right = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        let mut probs = Vec::with_capacity(m);
        for &(u, v, w, p) in &self.edges {
            edge_left.push(u);
            edge_right.push(v);
            weights.push(w);
            probs.push(p);
        }

        // CSR construction by counting sort on each side; adjacency lists
        // come out sorted by neighbor id because edges are placed in a
        // second pass over edges pre-sorted by (owner, neighbor).
        let left_csr = build_csr(nl, m, |i| (edge_left[i], edge_right[i]));
        let right_csr = build_csr(nr, m, |i| (edge_right[i], edge_left[i]));

        let mut edges_by_weight_desc: Vec<u32> = (0..m as u32).collect();
        edges_by_weight_desc.sort_unstable_by(|&a, &b| {
            weights[b as usize]
                .total_cmp(&weights[a as usize])
                .then(a.cmp(&b))
        });

        // Hot-path precomputation: fixed-point Bernoulli thresholds (one
        // integer compare per trial draw instead of an f64 convert), and
        // weight/threshold arrays gathered into the §V-B scan order so the
        // solvers' descending-weight scans read memory sequentially.
        let accept: Vec<u64> = probs
            .iter()
            .map(|&p| crate::sample::fixed_point_threshold(p))
            .collect();
        let desc_weights: Vec<Weight> = edges_by_weight_desc
            .iter()
            .map(|&e| weights[e as usize])
            .collect();
        let desc_accept: Vec<u64> = edges_by_weight_desc
            .iter()
            .map(|&e| accept[e as usize])
            .collect();

        // Degree-descending left relabeling for the wedge-listing kernel's
        // cache-local bucket arena.
        let left_degrees: Vec<u32> = (0..nl as usize)
            .map(|u| left_csr.0[u + 1] - left_csr.0[u])
            .collect();
        let (left_rank, left_by_rank) = crate::priority::degree_desc_ranks(&left_degrees);

        Ok(UncertainBipartiteGraph {
            left_offsets: left_csr.0,
            left_adj: left_csr.1,
            right_offsets: right_csr.0,
            right_adj: right_csr.1,
            edge_left,
            edge_right,
            weights,
            probs,
            accept,
            edges_by_weight_desc,
            desc_weights,
            desc_accept,
            left_rank,
            left_by_rank,
        })
    }
}

/// Builds one side's CSR. `key(i)` returns `(owner, neighbor)` for edge `i`.
fn build_csr(n: u32, m: usize, key: impl Fn(usize) -> (u32, u32)) -> (Vec<u32>, Vec<Adj>) {
    let n = n as usize;
    let mut counts = vec![0u32; n + 1];
    for i in 0..m {
        counts[key(i).0 as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();

    // Place edges ordered by (owner, neighbor) so each list is id-sorted.
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_unstable_by_key(|&i| key(i as usize));
    let mut adj = vec![
        Adj {
            nbr: 0,
            edge: crate::types::EdgeId(0)
        };
        m
    ];
    let mut cursor = offsets.clone();
    for &i in &order {
        let (owner, nbr) = key(i as usize);
        let slot = cursor[owner as usize] as usize;
        adj[slot] = Adj {
            nbr,
            edge: crate::types::EdgeId(i),
        };
        cursor[owner as usize] += 1;
    }
    (offsets, adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_probability() {
        let mut b = GraphBuilder::new();
        let err = b.add_edge(Left(0), Right(0), 1.0, 1.5).unwrap_err();
        assert!(matches!(err, BuildError::InvalidProbability { .. }));
        let err = b.add_edge(Left(0), Right(0), 1.0, -0.1).unwrap_err();
        assert!(matches!(err, BuildError::InvalidProbability { .. }));
        let err = b.add_edge(Left(0), Right(0), 1.0, f64::NAN).unwrap_err();
        assert!(matches!(err, BuildError::InvalidProbability { .. }));
    }

    #[test]
    fn rejects_bad_weight() {
        let mut b = GraphBuilder::new();
        for w in [-1.0, f64::NAN, f64::INFINITY] {
            let err = b.add_edge(Left(0), Right(0), w, 0.5).unwrap_err();
            assert!(matches!(err, BuildError::InvalidWeight { .. }));
        }
        // Zero weight is allowed (the hardness reduction uses w = 0.5 and
        // some datasets may contain zero-strength interactions).
        b.add_edge(Left(0), Right(0), 0.0, 0.5).unwrap();
    }

    #[test]
    fn rejects_duplicates_at_build() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 1.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(0), 2.0, 0.9).unwrap();
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            BuildError::DuplicateEdge {
                u: Left(0),
                v: Right(0)
            }
        );
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.num_left(), 0);
        assert_eq!(g.num_right(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.top3_weight_sum(), 0.0);
    }

    #[test]
    fn reserve_vertices_creates_isolated_tail() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.5).unwrap();
        b.reserve_vertices(10, 20);
        let g = b.build().unwrap();
        assert_eq!(g.num_left(), 10);
        assert_eq!(g.num_right(), 20);
        assert_eq!(g.left_degree(Left(9)), 0);
        assert_eq!(g.right_degree(Right(19)), 0);
    }

    #[test]
    fn adjacency_lists_sorted_by_neighbor_id() {
        let mut b = GraphBuilder::new();
        // Insert in scrambled order.
        b.add_edge(Left(0), Right(5), 1.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 1.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(3), 1.0, 0.5).unwrap();
        b.add_edge(Left(2), Right(3), 1.0, 0.5).unwrap();
        b.add_edge(Left(1), Right(3), 1.0, 0.5).unwrap();
        let g = b.build().unwrap();
        let nbrs: Vec<u32> = g.left_adj(Left(0)).iter().map(|a| a.nbr).collect();
        assert_eq!(nbrs, vec![1, 3, 5]);
        let nbrs: Vec<u32> = g.right_adj(Right(3)).iter().map(|a| a.nbr).collect();
        assert_eq!(nbrs, vec![0, 1, 2]);
    }

    #[test]
    fn builder_is_reusable_after_build() {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.5).unwrap();
        let g1 = b.build().unwrap();
        b.add_edge(Left(1), Right(1), 2.0, 0.5).unwrap();
        let g2 = b.build().unwrap();
        assert_eq!(g1.num_edges(), 1);
        assert_eq!(g2.num_edges(), 2);
    }
}
