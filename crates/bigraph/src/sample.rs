//! Bernoulli edge sampling for Monte-Carlo trials.
//!
//! Two samplers cover the solvers' needs:
//!
//! * [`WorldSampler`] materializes a complete possible world per trial —
//!   what Algorithm 1 (MC-VP) literally does ("randomly choose `W_i` from
//!   `W`").
//! * [`LazyEdgeSampler`] draws each edge's Bernoulli outcome **on first
//!   access** and memoizes it for the rest of the trial. Because edges are
//!   independent, any statistic computed from lazily drawn outcomes has
//!   exactly the distribution it would have under eager sampling — but the
//!   §V-B pruning in Ordering Sampling then also skips the *sampling* cost
//!   of the pruned tail, and the Karp-Luby estimator (Algorithm 4) can
//!   condition on an event's edges being present via
//!   [`LazyEdgeSampler::force_present`].
//!
//! # Determinism
//!
//! [`trial_rng`] derives an independent ChaCha8 stream per `(seed, trial)`
//! pair through a SplitMix64 finalizer, so trial `t` sees identical
//! randomness whether trials run sequentially or across threads.

use crate::graph::UncertainBipartiteGraph;
use crate::types::EdgeId;
use crate::world::PossibleWorld;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finalizer: decorrelates consecutive trial indices into
/// well-spread 64-bit seeds.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The RNG stream for trial `trial` of a run seeded with `seed`.
pub fn trial_rng(seed: u64, trial: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(splitmix64(seed ^ splitmix64(trial)))
}

/// Draws one Bernoulli outcome for edge `e` of `g`.
///
/// Edges with `p = 1` never consume randomness asymmetrically: the draw is
/// always performed so outcome sequences stay aligned across graphs that
/// differ only in probabilities. (`random::<f64>() < p` is false for `p=0`
/// and true for `p=1` except on the measure-zero draw of exactly 1.0,
/// which `random` excludes.)
#[inline]
pub fn bernoulli_edge(g: &UncertainBipartiteGraph, e: EdgeId, rng: &mut impl Rng) -> bool {
    rng.random::<f64>() < g.prob(e)
}

/// Samples complete possible worlds into a reusable buffer.
#[derive(Debug, Default, Clone)]
pub struct WorldSampler;

impl WorldSampler {
    /// Samples a fresh possible world of `g`.
    pub fn sample(g: &UncertainBipartiteGraph, rng: &mut impl Rng) -> PossibleWorld {
        let mut w = PossibleWorld::empty(g.num_edges());
        Self::sample_into(g, &mut w, rng);
        w
    }

    /// Samples into `world`, reusing its storage. `world` must have been
    /// created for a graph with the same number of edges.
    pub fn sample_into(g: &UncertainBipartiteGraph, world: &mut PossibleWorld, rng: &mut impl Rng) {
        assert_eq!(world.domain(), g.num_edges(), "world/graph mismatch");
        world.clear();
        for e in g.edge_ids() {
            if bernoulli_edge(g, e, rng) {
                world.insert(e);
            }
        }
    }
}

/// Per-trial memoized lazy Bernoulli sampler over a graph's edges.
///
/// Epoch stamping makes `begin_trial` O(1): an edge's memo is valid only if
/// its stamp equals the current epoch, so no per-trial clearing of the
/// outcome arrays is needed.
#[derive(Debug, Clone)]
pub struct LazyEdgeSampler {
    epoch: u32,
    stamps: Vec<u32>,
    outcomes: Vec<bool>,
}

impl LazyEdgeSampler {
    /// Creates a sampler for a graph with `num_edges` edges.
    pub fn new(num_edges: usize) -> Self {
        LazyEdgeSampler {
            // Start at 1 so the zero-initialized stamps are all invalid.
            epoch: 1,
            stamps: vec![0; num_edges],
            outcomes: vec![false; num_edges],
        }
    }

    /// Starts a new trial, invalidating all memoized outcomes.
    pub fn begin_trial(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: clear stamps so stale epoch-0 memos
            // cannot be mistaken for fresh ones.
            self.stamps.fill(u32::MAX);
            self.epoch = 1;
        }
    }

    /// Whether edge `e` exists in the current trial, drawing and memoizing
    /// the outcome on first access.
    #[inline]
    pub fn is_present(
        &mut self,
        g: &UncertainBipartiteGraph,
        e: EdgeId,
        rng: &mut impl Rng,
    ) -> bool {
        let i = e.index();
        if self.stamps[i] == self.epoch {
            return self.outcomes[i];
        }
        let out = bernoulli_edge(g, e, rng);
        self.stamps[i] = self.epoch;
        self.outcomes[i] = out;
        out
    }

    /// Forces edge `e` present for the current trial (Karp-Luby
    /// conditioning: "sample a possible world such that `B_j∖B_i ⊆ E_W`").
    #[inline]
    pub fn force_present(&mut self, e: EdgeId) {
        let i = e.index();
        self.stamps[i] = self.epoch;
        self.outcomes[i] = true;
    }

    /// Whether `e` has been drawn (or forced) this trial.
    #[inline]
    pub fn is_decided(&self, e: EdgeId) -> bool {
        self.stamps[e.index()] == self.epoch
    }

    /// The memoized outcome, if decided this trial.
    #[inline]
    pub fn decided_outcome(&self, e: EdgeId) -> Option<bool> {
        if self.is_decided(e) {
            Some(self.outcomes[e.index()])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::types::{Left, Right};

    fn chain_graph(probs: &[f64]) -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        for (i, &p) in probs.iter().enumerate() {
            b.add_edge(Left(i as u32), Right(i as u32), 1.0, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn trial_rng_is_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = trial_rng(7, 0);
            (0..4).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = trial_rng(7, 0);
            (0..4).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = trial_rng(7, 1);
            (0..4).map(|_| r.random()).collect()
        };
        assert_ne!(a, c);
        let d: Vec<u64> = {
            let mut r = trial_rng(8, 0);
            (0..4).map(|_| r.random()).collect()
        };
        assert_ne!(a, d);
    }

    #[test]
    fn deterministic_edges_always_respected() {
        let g = chain_graph(&[0.0, 1.0]);
        let mut rng = trial_rng(1, 0);
        for _ in 0..100 {
            let w = WorldSampler::sample(&g, &mut rng);
            assert!(!w.contains(EdgeId(0)), "p=0 edge sampled present");
            assert!(w.contains(EdgeId(1)), "p=1 edge sampled absent");
        }
    }

    #[test]
    fn empirical_frequency_approaches_probability() {
        let g = chain_graph(&[0.3]);
        let n = 20_000;
        let mut hits = 0usize;
        for t in 0..n {
            let mut rng = trial_rng(42, t);
            if bernoulli_edge(&g, EdgeId(0), &mut rng) {
                hits += 1;
            }
        }
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn sample_into_reuses_buffer() {
        let g = chain_graph(&[0.5, 0.5, 0.5]);
        let mut w = PossibleWorld::empty(g.num_edges());
        let mut rng = trial_rng(3, 0);
        WorldSampler::sample_into(&g, &mut w, &mut rng);
        let first = w.clone();
        // Resample until different (p=1/8 per draw of being identical).
        let mut differed = false;
        for _ in 0..64 {
            WorldSampler::sample_into(&g, &mut w, &mut rng);
            if w != first {
                differed = true;
                break;
            }
        }
        assert!(differed, "sampler appears frozen");
    }

    #[test]
    fn lazy_sampler_memoizes_within_trial() {
        let g = chain_graph(&[0.5; 8]);
        let mut s = LazyEdgeSampler::new(g.num_edges());
        let mut rng = trial_rng(9, 0);
        s.begin_trial();
        let first: Vec<bool> = g
            .edge_ids()
            .map(|e| s.is_present(&g, e, &mut rng))
            .collect();
        // Re-querying must not redraw.
        let second: Vec<bool> = g
            .edge_ids()
            .map(|e| s.is_present(&g, e, &mut rng))
            .collect();
        assert_eq!(first, second);
        for e in g.edge_ids() {
            assert_eq!(s.decided_outcome(e), Some(first[e.index()]));
        }
    }

    #[test]
    fn lazy_sampler_redraws_across_trials() {
        let g = chain_graph(&[0.5; 16]);
        let mut s = LazyEdgeSampler::new(g.num_edges());
        let mut rng = trial_rng(10, 0);
        s.begin_trial();
        let a: Vec<bool> = g
            .edge_ids()
            .map(|e| s.is_present(&g, e, &mut rng))
            .collect();
        s.begin_trial();
        for e in g.edge_ids() {
            assert!(!s.is_decided(e), "stale memo leaked across trials");
        }
        let b: Vec<bool> = g
            .edge_ids()
            .map(|e| s.is_present(&g, e, &mut rng))
            .collect();
        assert_ne!(a, b, "16 fair coins identical across trials: 1/65536 event");
    }

    #[test]
    fn force_present_overrides_draw() {
        let g = chain_graph(&[0.0]);
        let mut s = LazyEdgeSampler::new(1);
        let mut rng = trial_rng(11, 0);
        s.begin_trial();
        s.force_present(EdgeId(0));
        assert!(s.is_present(&g, EdgeId(0), &mut rng));
        // Next trial: the p=0 edge is absent again.
        s.begin_trial();
        assert!(!s.is_present(&g, EdgeId(0), &mut rng));
    }

    #[test]
    fn lazy_matches_eager_distribution() {
        // Chi-square-lite: empirical presence counts under lazy sampling
        // should track probabilities just like eager sampling does.
        let g = chain_graph(&[0.2, 0.8]);
        let n = 20_000;
        let mut lazy_hits = [0usize; 2];
        let mut s = LazyEdgeSampler::new(2);
        for t in 0..n {
            let mut rng = trial_rng(77, t);
            s.begin_trial();
            // Access in reverse order to decouple from edge id order.
            if s.is_present(&g, EdgeId(1), &mut rng) {
                lazy_hits[1] += 1;
            }
            if s.is_present(&g, EdgeId(0), &mut rng) {
                lazy_hits[0] += 1;
            }
        }
        assert!((lazy_hits[0] as f64 / n as f64 - 0.2).abs() < 0.02);
        assert!((lazy_hits[1] as f64 / n as f64 - 0.8).abs() < 0.02);
    }
}
