//! Bernoulli edge sampling for Monte-Carlo trials.
//!
//! Two samplers cover the solvers' needs:
//!
//! * [`WorldSampler`] materializes a complete possible world per trial —
//!   what Algorithm 1 (MC-VP) literally does ("randomly choose `W_i` from
//!   `W`").
//! * [`LazyEdgeSampler`] draws each edge's Bernoulli outcome **on first
//!   access** and memoizes it for the rest of the trial. Because edges are
//!   independent, any statistic computed from lazily drawn outcomes has
//!   exactly the distribution it would have under eager sampling — but the
//!   §V-B pruning in Ordering Sampling then also skips the *sampling* cost
//!   of the pruned tail, and the Karp-Luby estimator (Algorithm 4) can
//!   condition on an event's edges being present via
//!   [`LazyEdgeSampler::force_present`].
//!
//! # Determinism
//!
//! [`trial_rng`] derives an independent ChaCha8 stream per `(seed, trial)`
//! pair through a SplitMix64 finalizer, so trial `t` sees identical
//! randomness whether trials run sequentially or across threads.

use crate::graph::UncertainBipartiteGraph;
use crate::types::EdgeId;
use crate::world::PossibleWorld;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finalizer: decorrelates consecutive trial indices into
/// well-spread 64-bit seeds.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The RNG stream for trial `trial` of a run seeded with `seed`.
pub fn trial_rng(seed: u64, trial: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(splitmix64(seed ^ splitmix64(trial)))
}

/// `2⁵³`: one plus the largest value `random::<f64>()`'s 53-bit mantissa
/// grid can take, scaled to an integer.
pub const FIXED_POINT_ONE: u64 = 1u64 << 53;

/// The fixed-point acceptance threshold for probability `p`.
///
/// # Rounding rule
///
/// `random::<f64>()` draws `u = next_u64() >> 11` (a uniform 53-bit
/// integer) and returns `u · 2⁻⁵³` — see the vendored `rand` shim. Both
/// `u · 2⁻⁵³` and `p · 2⁵³` are computed *exactly* in `f64`: `u` has at
/// most 53 significant bits, and multiplying by a power of two only
/// shifts the exponent (subnormal `p` scales up exactly; `p ≤ 1` cannot
/// overflow). Therefore, for integer `u`:
///
/// ```text
/// u · 2⁻⁵³ < p   ⟺   u < p · 2⁵³   ⟺   u < ⌈p · 2⁵³⌉ =: t
/// ```
///
/// (the last step because `u` is an integer: `u < x ⟺ u < ⌈x⌉`). The
/// threshold `t = ⌈p · 2⁵³⌉` is computed here as
/// `(p * 2⁵³).ceil() as u64`, which is exact by the argument above, so
/// `accept_word(w, t)` reproduces `random::<f64>() < p` bit-for-bit on
/// the same raw word `w`. Edge cases: `p = 0 → t = 0` (never accepts,
/// `u ≥ 0` always), `p = 1 → t = 2⁵³` (always accepts, `u ≤ 2⁵³ − 1`),
/// `p = f64::MIN_POSITIVE → t = 1` (accepts exactly the draw `u = 0`,
/// same as the float compare).
#[inline]
pub fn fixed_point_threshold(p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    (p * FIXED_POINT_ONE as f64).ceil() as u64
}

/// Whether the raw RNG word `word` is an acceptance under `threshold`
/// (see [`fixed_point_threshold`] for the equivalence proof).
#[inline]
pub fn accept_word(word: u64, threshold: u64) -> bool {
    (word >> 11) < threshold
}

/// Draws one Bernoulli outcome for edge `e` of `g`.
///
/// Edges with `p = 1` never consume randomness asymmetrically: the draw is
/// always performed so outcome sequences stay aligned across graphs that
/// differ only in probabilities. The accept/reject decision uses the
/// precomputed fixed-point threshold (an integer compare on the raw
/// `next_u64` word) and is bit-identical to the historical
/// `rng.random::<f64>() < g.prob(e)` — both consume exactly one `u64`
/// per draw, and [`fixed_point_threshold`] proves the decision equal.
#[inline]
pub fn bernoulli_edge(g: &UncertainBipartiteGraph, e: EdgeId, rng: &mut impl Rng) -> bool {
    accept_word(rng.next_u64(), g.accept_threshold(e))
}

/// Samples complete possible worlds into a reusable buffer.
#[derive(Debug, Default, Clone)]
pub struct WorldSampler;

impl WorldSampler {
    /// Samples a fresh possible world of `g`.
    pub fn sample(g: &UncertainBipartiteGraph, rng: &mut impl Rng) -> PossibleWorld {
        let mut w = PossibleWorld::empty(g.num_edges());
        Self::sample_into(g, &mut w, rng);
        w
    }

    /// Samples into `world`, reusing its storage. `world` must have been
    /// created for a graph with the same number of edges.
    ///
    /// Draws are batched: a buffer of raw `next_u64` words is filled per
    /// chunk, then compared against the precomputed thresholds in a tight
    /// integer loop. The words are consumed in edge-id order — exactly
    /// the sequence the per-edge path would draw — so sampled worlds are
    /// bit-identical to repeated [`bernoulli_edge`] calls.
    pub fn sample_into(g: &UncertainBipartiteGraph, world: &mut PossibleWorld, rng: &mut impl Rng) {
        assert_eq!(world.domain(), g.num_edges(), "world/graph mismatch");
        world.clear();
        const BATCH: usize = 256;
        let mut words = [0u64; BATCH];
        let accept = g.accept_thresholds();
        let mut base = 0usize;
        while base < accept.len() {
            let n = (accept.len() - base).min(BATCH);
            for w in &mut words[..n] {
                *w = rng.next_u64();
            }
            for (i, &t) in accept[base..base + n].iter().enumerate() {
                if accept_word(words[i], t) {
                    world.insert(EdgeId((base + i) as u32));
                }
            }
            base += n;
        }
    }
}

/// Per-trial memoized lazy Bernoulli sampler over a graph's edges.
///
/// Epoch stamping makes `begin_trial` O(1): an edge's memo is valid only if
/// its stamp equals the current epoch, so no per-trial clearing of the
/// outcome arrays is needed.
#[derive(Debug, Clone)]
pub struct LazyEdgeSampler {
    epoch: u32,
    stamps: Vec<u32>,
    outcomes: Vec<bool>,
}

impl LazyEdgeSampler {
    /// Creates a sampler for a graph with `num_edges` edges.
    pub fn new(num_edges: usize) -> Self {
        LazyEdgeSampler {
            // Start at 1 so the zero-initialized stamps are all invalid.
            epoch: 1,
            stamps: vec![0; num_edges],
            outcomes: vec![false; num_edges],
        }
    }

    /// Starts a new trial, invalidating all memoized outcomes.
    pub fn begin_trial(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: clear stamps so stale epoch-0 memos
            // cannot be mistaken for fresh ones.
            self.stamps.fill(u32::MAX);
            self.epoch = 1;
        }
    }

    /// Whether edge `e` exists in the current trial, drawing and memoizing
    /// the outcome on first access.
    #[inline]
    pub fn is_present(
        &mut self,
        g: &UncertainBipartiteGraph,
        e: EdgeId,
        rng: &mut impl Rng,
    ) -> bool {
        let i = e.index();
        if self.stamps[i] == self.epoch {
            return self.outcomes[i];
        }
        let out = bernoulli_edge(g, e, rng);
        self.stamps[i] = self.epoch;
        self.outcomes[i] = out;
        out
    }

    /// Forces edge `e` present for the current trial (Karp-Luby
    /// conditioning: "sample a possible world such that `B_j∖B_i ⊆ E_W`").
    #[inline]
    pub fn force_present(&mut self, e: EdgeId) {
        let i = e.index();
        self.stamps[i] = self.epoch;
        self.outcomes[i] = true;
    }

    /// Whether `e` has been drawn (or forced) this trial.
    #[inline]
    pub fn is_decided(&self, e: EdgeId) -> bool {
        self.stamps[e.index()] == self.epoch
    }

    /// The memoized outcome, if decided this trial.
    #[inline]
    pub fn decided_outcome(&self, e: EdgeId) -> Option<bool> {
        if self.is_decided(e) {
            Some(self.outcomes[e.index()])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::types::{Left, Right};
    use rand::RngCore;

    fn chain_graph(probs: &[f64]) -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        for (i, &p) in probs.iter().enumerate() {
            b.add_edge(Left(i as u32), Right(i as u32), 1.0, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn threshold_edge_cases() {
        assert_eq!(fixed_point_threshold(0.0), 0);
        assert_eq!(fixed_point_threshold(1.0), FIXED_POINT_ONE);
        assert_eq!(fixed_point_threshold(f64::MIN_POSITIVE), 1);
        assert_eq!(fixed_point_threshold(0.5), FIXED_POINT_ONE / 2);
        // p = 0 never accepts, p = 1 always accepts, for any raw word.
        for word in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
            assert!(!accept_word(word, fixed_point_threshold(0.0)));
            assert!(accept_word(word, fixed_point_threshold(1.0)));
        }
        // p = MIN_POSITIVE accepts exactly the all-zero mantissa draw.
        let t = fixed_point_threshold(f64::MIN_POSITIVE);
        assert!(accept_word(0x7FF, t)); // low 11 bits are discarded
        assert!(!accept_word(0x800, t));
    }

    #[test]
    fn integer_compare_matches_float_compare_exhaustively() {
        // The decision `accept_word(w, fixed_point_threshold(p))` must
        // equal the historical `(w >> 11) as f64 * 2⁻⁵³ < p` for raw
        // words straddling each probability's threshold, plus random
        // words from real trial streams.
        let probs = [
            0.0,
            1.0,
            f64::MIN_POSITIVE,
            0.5,
            0.5 - f64::EPSILON / 4.0,
            0.5 + f64::EPSILON / 2.0,
            0.3,
            1e-9,
            1.0 - f64::EPSILON / 2.0,
        ];
        let scale = 1.0 / FIXED_POINT_ONE as f64;
        for &p in &probs {
            let t = fixed_point_threshold(p);
            let mut words: Vec<u64> = vec![0, 1 << 11, u64::MAX];
            for d in [-2i64, -1, 0, 1, 2] {
                let u = (t as i64 + d).clamp(0, (FIXED_POINT_ONE - 1) as i64) as u64;
                words.push(u << 11);
            }
            let mut rng = trial_rng(99, 0);
            words.extend((0..512).map(|_| rng.next_u64()));
            for &w in &words {
                let float_decision = (w >> 11) as f64 * scale < p;
                assert_eq!(accept_word(w, t), float_decision, "p={p} w={w:#x} t={t}");
            }
        }
    }

    #[test]
    fn batched_sample_matches_per_edge_stream() {
        // The batched path must consume the same words in the same order
        // as per-edge draws: identical worlds from identical streams.
        let probs: Vec<f64> = (0..1000).map(|i| (i as f64) / 999.0).collect();
        let g = chain_graph(&probs);
        for trial in 0..8 {
            let mut rng_a = trial_rng(5, trial);
            let mut rng_b = trial_rng(5, trial);
            let mut batched = PossibleWorld::empty(g.num_edges());
            WorldSampler::sample_into(&g, &mut batched, &mut rng_a);
            let mut per_edge = PossibleWorld::empty(g.num_edges());
            for e in g.edge_ids() {
                if bernoulli_edge(&g, e, &mut rng_b) {
                    per_edge.insert(e);
                }
            }
            assert_eq!(batched, per_edge);
            // Both paths left the RNGs at the same position.
            assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        }
    }

    #[test]
    fn trial_rng_is_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = trial_rng(7, 0);
            (0..4).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = trial_rng(7, 0);
            (0..4).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = trial_rng(7, 1);
            (0..4).map(|_| r.random()).collect()
        };
        assert_ne!(a, c);
        let d: Vec<u64> = {
            let mut r = trial_rng(8, 0);
            (0..4).map(|_| r.random()).collect()
        };
        assert_ne!(a, d);
    }

    #[test]
    fn deterministic_edges_always_respected() {
        let g = chain_graph(&[0.0, 1.0]);
        let mut rng = trial_rng(1, 0);
        for _ in 0..100 {
            let w = WorldSampler::sample(&g, &mut rng);
            assert!(!w.contains(EdgeId(0)), "p=0 edge sampled present");
            assert!(w.contains(EdgeId(1)), "p=1 edge sampled absent");
        }
    }

    #[test]
    fn empirical_frequency_approaches_probability() {
        let g = chain_graph(&[0.3]);
        let n = 20_000;
        let mut hits = 0usize;
        for t in 0..n {
            let mut rng = trial_rng(42, t);
            if bernoulli_edge(&g, EdgeId(0), &mut rng) {
                hits += 1;
            }
        }
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn sample_into_reuses_buffer() {
        let g = chain_graph(&[0.5, 0.5, 0.5]);
        let mut w = PossibleWorld::empty(g.num_edges());
        let mut rng = trial_rng(3, 0);
        WorldSampler::sample_into(&g, &mut w, &mut rng);
        let first = w.clone();
        // Resample until different (p=1/8 per draw of being identical).
        let mut differed = false;
        for _ in 0..64 {
            WorldSampler::sample_into(&g, &mut w, &mut rng);
            if w != first {
                differed = true;
                break;
            }
        }
        assert!(differed, "sampler appears frozen");
    }

    #[test]
    fn lazy_sampler_memoizes_within_trial() {
        let g = chain_graph(&[0.5; 8]);
        let mut s = LazyEdgeSampler::new(g.num_edges());
        let mut rng = trial_rng(9, 0);
        s.begin_trial();
        let first: Vec<bool> = g
            .edge_ids()
            .map(|e| s.is_present(&g, e, &mut rng))
            .collect();
        // Re-querying must not redraw.
        let second: Vec<bool> = g
            .edge_ids()
            .map(|e| s.is_present(&g, e, &mut rng))
            .collect();
        assert_eq!(first, second);
        for e in g.edge_ids() {
            assert_eq!(s.decided_outcome(e), Some(first[e.index()]));
        }
    }

    #[test]
    fn lazy_sampler_redraws_across_trials() {
        let g = chain_graph(&[0.5; 16]);
        let mut s = LazyEdgeSampler::new(g.num_edges());
        let mut rng = trial_rng(10, 0);
        s.begin_trial();
        let a: Vec<bool> = g
            .edge_ids()
            .map(|e| s.is_present(&g, e, &mut rng))
            .collect();
        s.begin_trial();
        for e in g.edge_ids() {
            assert!(!s.is_decided(e), "stale memo leaked across trials");
        }
        let b: Vec<bool> = g
            .edge_ids()
            .map(|e| s.is_present(&g, e, &mut rng))
            .collect();
        assert_ne!(a, b, "16 fair coins identical across trials: 1/65536 event");
    }

    #[test]
    fn force_present_overrides_draw() {
        let g = chain_graph(&[0.0]);
        let mut s = LazyEdgeSampler::new(1);
        let mut rng = trial_rng(11, 0);
        s.begin_trial();
        s.force_present(EdgeId(0));
        assert!(s.is_present(&g, EdgeId(0), &mut rng));
        // Next trial: the p=0 edge is absent again.
        s.begin_trial();
        assert!(!s.is_present(&g, EdgeId(0), &mut rng));
    }

    #[test]
    fn lazy_matches_eager_distribution() {
        // Chi-square-lite: empirical presence counts under lazy sampling
        // should track probabilities just like eager sampling does.
        let g = chain_graph(&[0.2, 0.8]);
        let n = 20_000;
        let mut lazy_hits = [0usize; 2];
        let mut s = LazyEdgeSampler::new(2);
        for t in 0..n {
            let mut rng = trial_rng(77, t);
            s.begin_trial();
            // Access in reverse order to decouple from edge id order.
            if s.is_present(&g, EdgeId(1), &mut rng) {
                lazy_hits[1] += 1;
            }
            if s.is_present(&g, EdgeId(0), &mut rng) {
                lazy_hits[0] += 1;
            }
        }
        assert!((lazy_hits[0] as f64 / n as f64 - 0.2).abs() < 0.02);
        assert!((lazy_hits[1] as f64 / n as f64 - 0.8).abs() < 0.02);
    }
}
