//! Closed-form expected motif counts on uncertain bipartite networks.
//!
//! The related-work line the paper builds on (uncertain butterfly
//! counting, Zhou et al. VLDB'21) estimates the *expected* number of
//! butterflies over the possible-world distribution. By edge
//! independence and linearity of expectation those quantities have exact
//! closed forms, no sampling needed:
//!
//! * an angle `∠(u, v, u')` exists with probability `p(u,v)·p(u',v)`;
//! * a butterfly `(u, u', v, v')` exists with probability
//!   `q_v · q_{v'}` where `q_v = p(u,v)·p(u',v)`, so per left pair the
//!   expected count is `((Σ_v q_v)² − Σ_v q_v²) / 2`.
//!
//! These are useful as workload descriptors (they predict the per-trial
//! costs of Lemmas IV.1/V.1) and as test oracles.

use crate::fx::FxHashMap;
use crate::graph::UncertainBipartiteGraph;
use crate::types::{Right, Side};

/// Expected number of angles (2-paths) whose middle vertex lies on
/// `side`: `Σ_m ((Σ p)² − Σ p²) / 2` over `m`'s incident edges.
pub fn expected_angle_count(g: &UncertainBipartiteGraph, side: Side) -> f64 {
    let count_for = |probs: &mut dyn Iterator<Item = f64>| -> f64 {
        let (mut s1, mut s2) = (0.0, 0.0);
        for p in probs {
            s1 += p;
            s2 += p * p;
        }
        (s1 * s1 - s2) / 2.0
    };
    match side {
        Side::Right => (0..g.num_right())
            .map(|v| {
                let v = Right(v as u32);
                count_for(&mut g.right_adj(v).iter().map(|a| g.prob(a.edge)))
            })
            .sum(),
        Side::Left => (0..g.num_left())
            .map(|u| {
                let u = crate::types::Left(u as u32);
                count_for(&mut g.left_adj(u).iter().map(|a| g.prob(a.edge)))
            })
            .sum(),
    }
}

/// Exact expected number of butterflies over all possible worlds.
///
/// Complexity `O(Σ_v deg(v)²)` via wedge enumeration over right middles
/// (each wedge contributes its probability to its left-pair accumulator).
pub fn expected_butterfly_count(g: &UncertainBipartiteGraph) -> f64 {
    // (sum q, sum q²) per unordered left pair.
    let mut acc: FxHashMap<(u32, u32), (f64, f64)> = FxHashMap::default();
    for v in 0..g.num_right() as u32 {
        let adj = g.right_adj(Right(v));
        for i in 0..adj.len() {
            let (ui, pi) = (adj[i].nbr, g.prob(adj[i].edge));
            for aj in &adj[(i + 1)..] {
                let (uj, pj) = (aj.nbr, g.prob(aj.edge));
                let q = pi * pj;
                let key = (ui.min(uj), ui.max(uj));
                let slot = acc.entry(key).or_insert((0.0, 0.0));
                slot.0 += q;
                slot.1 += q * q;
            }
        }
    }
    acc.values().map(|&(s1, s2)| (s1 * s1 - s2) / 2.0).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::types::Left;
    use crate::world::PossibleWorld;
    use crate::EdgeId;

    fn fig1() -> UncertainBipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
        b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
        b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
        b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
        b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
        b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
        b.build().unwrap()
    }

    /// Brute-force expectation by enumerating all worlds.
    fn reference_expected_butterflies(g: &UncertainBipartiteGraph) -> f64 {
        let m = g.num_edges();
        assert!(m <= 16);
        let mut total = 0.0;
        for mask in 0u32..(1 << m) {
            let mut w = PossibleWorld::empty(m);
            for i in 0..m {
                if mask >> i & 1 == 1 {
                    w.insert(EdgeId(i as u32));
                }
            }
            let count = count_butterflies_in_world(g, &w);
            total += w.probability(g) * count as f64;
        }
        total
    }

    fn count_butterflies_in_world(g: &UncertainBipartiteGraph, w: &PossibleWorld) -> usize {
        let mut n = 0;
        let nl = g.num_left() as u32;
        for a in 0..nl {
            for b in (a + 1)..nl {
                let mut common = 0usize;
                for (v, e1) in g.left_neighbors(Left(a)) {
                    if !w.contains(e1) {
                        continue;
                    }
                    if let Some(e2) = g.find_edge(Left(b), v) {
                        if w.contains(e2) {
                            common += 1;
                        }
                    }
                }
                n += common * common.saturating_sub(1) / 2;
            }
        }
        n
    }

    #[test]
    fn fig1_expected_butterflies_hand_computed() {
        // q = (.15, .24, .56): E = .15·.24 + .15·.56 + .24·.56 = .2544.
        let g = fig1();
        let e = expected_butterfly_count(&g);
        assert!((e - 0.2544).abs() < 1e-12, "e={e}");
    }

    #[test]
    fn closed_form_matches_world_enumeration() {
        let g = fig1();
        let closed = expected_butterfly_count(&g);
        let reference = reference_expected_butterflies(&g);
        assert!((closed - reference).abs() < 1e-9, "{closed} vs {reference}");
    }

    #[test]
    fn deterministic_graph_counts_are_integral() {
        // All p = 1: expected = actual backbone butterfly count.
        let mut b = GraphBuilder::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                b.add_edge(Left(u), Right(v), 1.0, 1.0).unwrap();
            }
        }
        let g = b.build().unwrap();
        // K_{3,3}: C(3,2)² = 9 butterflies.
        assert!((expected_butterfly_count(&g) - 9.0).abs() < 1e-12);
        // Angles with right middles: 3 middles × C(3,2) = 9.
        assert!((expected_angle_count(&g, Side::Right) - 9.0).abs() < 1e-12);
        assert!((expected_angle_count(&g, Side::Left) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn expected_angles_match_hand_computation() {
        let g = fig1();
        // Right middles: v0: .5·.3=.15; v1: .6·.4=.24; v2: .8·.7=.56.
        let e = expected_angle_count(&g, Side::Right);
        assert!((e - (0.15 + 0.24 + 0.56)).abs() < 1e-12, "e={e}");
        // Left middles: u0: (.5+.6+.8)² − (.25+.36+.64) all /2 = (3.61−1.25)/2 = 1.18;
        // u1: ((1.4)² − (.09+.16+.49))/2 = (1.96 − .74)/2 = .61.
        let e = expected_angle_count(&g, Side::Left);
        assert!((e - (1.18 + 0.61)).abs() < 1e-12, "e={e}");
    }

    #[test]
    fn empty_and_butterfly_free_graphs() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(expected_butterfly_count(&g), 0.0);
        let mut b = GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.9).unwrap();
        b.add_edge(Left(1), Right(1), 1.0, 0.9).unwrap();
        let g = b.build().unwrap();
        assert_eq!(expected_butterfly_count(&g), 0.0);
        assert_eq!(expected_angle_count(&g, Side::Right), 0.0);
    }
}
