//! Plain-text edge-list serialization.
//!
//! Format: one edge per line, `LEFT_ID<TAB>RIGHT_ID<TAB>WEIGHT<TAB>PROB`,
//! `#`-prefixed comment lines and blank lines ignored. This is the lingua
//! franca of the uncertain-graph literature's dataset dumps (the STRING
//! protein download, KONECT exports, etc.), so real data drops in directly.

use crate::builder::{BuildError, GraphBuilder};
use crate::graph::UncertainBipartiteGraph;
use crate::types::{Left, Right};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors raised while parsing an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// The parsed edges failed graph validation.
    Build(BuildError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            IoError::Build(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<BuildError> for IoError {
    fn from(e: BuildError) -> Self {
        IoError::Build(e)
    }
}

impl From<crate::storage::StorageError> for IoError {
    fn from(e: crate::storage::StorageError) -> Self {
        match e {
            crate::storage::StorageError::Io(io) => IoError::Io(io),
            crate::storage::StorageError::Format(c) => IoError::Parse {
                line: 0,
                msg: format!("container: {c}"),
            },
        }
    }
}

/// Reads an uncertain bipartite graph from tab- or space-separated text.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<UncertainBipartiteGraph, IoError> {
    let mut b = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let mut field = |name: &str| {
            it.next().ok_or_else(|| IoError::Parse {
                line: lineno,
                msg: format!("missing field `{name}`"),
            })
        };
        let u: u32 = parse(field("left")?, lineno, "left id")?;
        let v: u32 = parse(field("right")?, lineno, "right id")?;
        let w: f64 = parse(field("weight")?, lineno, "weight")?;
        let p: f64 = parse(field("prob")?, lineno, "probability")?;
        if it.next().is_some() {
            return Err(IoError::Parse {
                line: lineno,
                msg: "trailing fields".into(),
            });
        }
        b.add_edge(Left(u), Right(v), w, p)
            .map_err(IoError::Build)?;
    }
    Ok(b.build()?)
}

fn parse<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T, IoError> {
    s.parse().map_err(|_| IoError::Parse {
        line,
        msg: format!("cannot parse {what} from `{s}`"),
    })
}

/// Magic bytes and version of the binary graph format.
const BINARY_MAGIC: &[u8; 8] = b"UBGRAPH1";

/// Writes the compact binary format: magic, counts, then per-edge
/// `(u: u32, v: u32, w: f64, p: f64)` little-endian records. Roughly 4×
/// smaller and ~20× faster to parse than the text format — the difference
/// between seconds and minutes for the 39.5 M-edge Protein graph.
pub fn write_binary<W: Write>(g: &UncertainBipartiteGraph, mut w: W) -> std::io::Result<()> {
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_left() as u64).to_le_bytes())?;
    w.write_all(&(g.num_right() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        w.write_all(&u.0.to_le_bytes())?;
        w.write_all(&v.0.to_le_bytes())?;
        w.write_all(&g.weight(e).to_le_bytes())?;
        w.write_all(&g.prob(e).to_le_bytes())?;
    }
    Ok(())
}

/// Reads the binary format written by [`write_binary`].
///
/// The length prefixes are treated as hostile until the payload backs
/// them up: pre-allocation is capped, truncated files fail the
/// per-record read with a clean [`IoError`], and declared vertex
/// counts may exceed the ids the edge records actually reach by at
/// most ~10⁶ per side (isolated trailing vertices are legitimate;
/// multi-GiB phantom reservations are not).
pub fn read_binary<R: std::io::Read>(mut r: R) -> Result<UncertainBipartiteGraph, IoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(IoError::Parse {
            line: 0,
            msg: "bad magic: not a UBGRAPH1 binary graph".into(),
        });
    }
    let mut u64buf = [0u8; 8];
    let mut read_u64 = |r: &mut R| -> std::io::Result<u64> {
        r.read_exact(&mut u64buf)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let nl = read_u64(&mut r)?;
    let nr = read_u64(&mut r)?;
    let m = read_u64(&mut r)?;
    if nl > u32::MAX as u64 || nr > u32::MAX as u64 || m > u32::MAX as u64 {
        return Err(IoError::Build(BuildError::TooLarge));
    }
    // The claimed edge count is untrusted: cap the pre-allocation the
    // way `codec::Decoder::len_capped` does, so a bit-flipped or
    // hostile length prefix costs at most ~24 MiB up front instead of
    // aborting the process on a multi-GiB reservation. The builder
    // grows normally as real records arrive; a short file then fails
    // the per-record `read_exact` with a clean `IoError`.
    const MAX_PREALLOC_EDGES: u64 = 1 << 20;
    let mut b = GraphBuilder::with_capacity(m.min(MAX_PREALLOC_EDGES) as usize);
    let mut rec = [0u8; 24];
    let (mut max_u, mut max_v) = (0u64, 0u64);
    for i in 0..m {
        r.read_exact(&mut rec).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IoError::Parse {
                    line: i as usize + 1,
                    msg: format!("truncated: {i} of {m} edge records present"),
                }
            } else {
                IoError::Io(e)
            }
        })?;
        let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let w = f64::from_le_bytes(rec[8..16].try_into().unwrap());
        let p = f64::from_le_bytes(rec[16..24].try_into().unwrap());
        max_u = max_u.max(u as u64 + 1);
        max_v = max_v.max(v as u64 + 1);
        b.add_edge(Left(u), Right(v), w, p)?;
    }
    // The declared vertex counts are as untrusted as the edge count,
    // and `build()` materializes per-vertex CSR arrays sized by them —
    // a bit-flipped count can demand gigabytes of isolated vertices
    // the edge data never mentions. Honor the legitimate use (trailing
    // isolated vertices written by `write_binary`, bounded slack) and
    // refuse the bomb.
    const ISOLATED_SLACK: u64 = 1 << 20;
    if nl > max_u + ISOLATED_SLACK || nr > max_v + ISOLATED_SLACK {
        return Err(IoError::Parse {
            line: 0,
            msg: format!(
                "declared {nl}x{nr} vertices but the {m} edge records reach only \
                 {max_u}x{max_v}: refusing an implausible isolated-vertex reservation"
            ),
        });
    }
    b.reserve_vertices(nl as u32, nr as u32);
    Ok(b.build()?)
}

/// Reads a graph by path, dispatching on the leading magic so callers
/// can pass text edge lists, `UBGRAPH1` binaries, or `UBGCONT1`
/// containers interchangeably.
pub fn read_auto(path: &std::path::Path) -> Result<UncertainBipartiteGraph, IoError> {
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    let peek = reader.fill_buf()?;
    if peek.starts_with(crate::storage::CONTAINER_MAGIC) {
        drop(reader);
        Ok(crate::storage::read_container_path(path)?)
    } else if peek.starts_with(BINARY_MAGIC) {
        read_binary(reader)
    } else {
        read_edge_list(reader)
    }
}

/// Writes a graph in the same format, with a header comment.
pub fn write_edge_list<W: Write>(g: &UncertainBipartiteGraph, mut w: W) -> std::io::Result<()> {
    writeln!(
        w,
        "# uncertain bipartite graph: |L|={} |R|={} |E|={}",
        g.num_left(),
        g.num_right(),
        g.num_edges()
    )?;
    writeln!(w, "# left\tright\tweight\tprob")?;
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        writeln!(w, "{}\t{}\t{}\t{}", u.0, v.0, g.weight(e), g.prob(e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_preserves_graph() {
        let text = "\
# demo
0\t0\t2\t0.5
0\t1\t2\t0.6
1 0 3 0.3

1 1 3 0.4
";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_edges(), 4);
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(Cursor::new(out)).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        for e in g.edge_ids() {
            assert_eq!(g.endpoints(e), g2.endpoints(e));
            assert_eq!(g.weight(e), g2.weight(e));
            assert_eq!(g.prob(e), g2.prob(e));
        }
    }

    #[test]
    fn reports_missing_field_with_line_number() {
        let err = read_edge_list(Cursor::new("0 0 1.0 0.5\n0 1 2.0\n")).unwrap_err();
        match err {
            IoError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("prob"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reports_unparseable_field() {
        let err = read_edge_list(Cursor::new("0 zero 1.0 0.5\n")).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_trailing_fields() {
        let err = read_edge_list(Cursor::new("0 0 1.0 0.5 extra\n")).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn surfaces_validation_errors() {
        let err = read_edge_list(Cursor::new("0 0 1.0 1.5\n")).unwrap_err();
        assert!(matches!(
            err,
            IoError::Build(BuildError::InvalidProbability { .. })
        ));
        let err = read_edge_list(Cursor::new("0 0 1.0 0.5\n0 0 1.0 0.5\n")).unwrap_err();
        assert!(matches!(
            err,
            IoError::Build(BuildError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn empty_input_builds_empty_graph() {
        let g = read_edge_list(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let text = "0 0 2.25 0.5\n0 1 2 0.6\n1 0 3 0.3\n1 1 3.125 0.4\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(Cursor::new(&buf)).unwrap();
        assert_eq!(g2.num_left(), g.num_left());
        assert_eq!(g2.num_right(), g.num_right());
        assert_eq!(g2.num_edges(), g.num_edges());
        for e in g.edge_ids() {
            assert_eq!(g.endpoints(e), g2.endpoints(e));
            // Bit-exact floats, unlike the decimal text path.
            assert_eq!(g.weight(e).to_bits(), g2.weight(e).to_bits());
            assert_eq!(g.prob(e).to_bits(), g2.prob(e).to_bits());
        }
    }

    #[test]
    fn binary_preserves_isolated_trailing_vertices() {
        let mut b = crate::GraphBuilder::new();
        b.add_edge(Left(0), Right(0), 1.0, 0.5).unwrap();
        b.reserve_vertices(7, 9);
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(Cursor::new(&buf)).unwrap();
        assert_eq!(g2.num_left(), 7);
        assert_eq!(g2.num_right(), 9);
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        let err = read_binary(Cursor::new(b"NOTMAGIC".to_vec())).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 0, .. }));

        let g = read_edge_list(Cursor::new("0 0 1 0.5\n0 1 1 0.5\n")).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_binary(Cursor::new(&buf)).unwrap_err();
        match err {
            IoError::Parse { msg, .. } => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_auto_dispatches_on_magic() {
        let g = read_edge_list(Cursor::new("0 0 1 0.5\n1 1 2 0.25\n")).unwrap();
        let dir = std::env::temp_dir();
        let text_path = dir.join("mpmb_io_test.tsv");
        let bin_path = dir.join("mpmb_io_test.ubg");
        let cont_path = dir.join("mpmb_io_test.ubgc");
        write_edge_list(&g, std::fs::File::create(&text_path).unwrap()).unwrap();
        write_binary(&g, std::fs::File::create(&bin_path).unwrap()).unwrap();
        crate::storage::write_container_path(&g, &cont_path).unwrap();
        for path in [&text_path, &bin_path, &cont_path] {
            let g2 = read_auto(path).unwrap();
            assert_eq!(g2.num_edges(), g.num_edges(), "{path:?}");
        }
        let _ = std::fs::remove_file(text_path);
        let _ = std::fs::remove_file(bin_path);
        let _ = std::fs::remove_file(cont_path);
    }

    /// A valid two-edge binary file to mutate in hostility tests.
    fn small_binary() -> Vec<u8> {
        let g = read_edge_list(Cursor::new("0 0 1 0.5\n0 1 1 0.5\n")).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf
    }

    #[test]
    fn binary_overlength_edge_count_errors_without_allocating() {
        // Claim u32::MAX edges (the largest count the format admits)
        // with only two records of payload: pre-hardening this
        // reserved ~96 GiB in the builder and aborted; now it must
        // return a clean truncation error.
        let mut buf = small_binary();
        buf[24..32].copy_from_slice(&(u32::MAX as u64).to_le_bytes());
        let err = read_binary(Cursor::new(&buf)).unwrap_err();
        match err {
            IoError::Parse { msg, .. } => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binary_bitflipped_length_prefixes_error_not_abort() {
        let good = small_binary();
        // Flip every bit of the three length words (nl, nr, m). Each
        // mutant must either parse (flips can make counts smaller or
        // reserve a few isolated vertices) or fail with an IoError —
        // never abort, panic, or materialize a phantom multi-GiB
        // vertex set (the isolated-vertex slack check).
        for byte in 8..32 {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                let _ = read_binary(Cursor::new(&bad));
            }
        }
    }

    #[test]
    fn binary_truncation_at_every_prefix_errors() {
        let good = small_binary();
        for cut in 0..good.len() {
            assert!(
                read_binary(Cursor::new(&good[..cut])).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }
}
