//! Core identifier and scalar types for uncertain bipartite networks.
//!
//! Vertex ids are side-tagged newtypes ([`Left`], [`Right`]) so the two
//! partitions of Definition 1 cannot be confused at compile time. Ids are
//! `u32` — per the perf-book guidance, narrow indices keep hot structures
//! small; 4 billion vertices per side is far beyond the paper's largest
//! dataset (186,773 per side).

use std::fmt;

/// Edge weight. Paper notation: `w : E → ℝ` (Definition 1), restricted by
/// the builder to non-negative finite values because the §V-B edge-ordering
/// pruning bound (`w(e) + w̄ < w_max ⇒ prune`) is only valid when no edge
/// can contribute negative weight.
pub type Weight = f64;

/// A vertex in the left partition `L`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Left(pub u32);

/// A vertex in the right partition `R`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Right(pub u32);

/// Dense edge identifier: index into the graph's parallel edge arrays.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl Left {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Right {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Left {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for Left {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Debug for Right {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Right {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Which side of the bipartition a vertex set refers to.
///
/// Lemma V.1 notes the two parts are symmetrical: the Ordering Sampling
/// solver chooses whichever side is cheaper as the angle middle side, and
/// records the choice with this tag.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Side {
    /// The left partition `L`.
    Left,
    /// The right partition `R`.
    Right,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn flip(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// A side-erased vertex, used where an API must mention vertices of either
/// partition uniformly (e.g. vertex-priority orders spanning `V = L ∪ R`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Vertex {
    /// A left-partition vertex.
    L(Left),
    /// A right-partition vertex.
    R(Right),
}

impl Vertex {
    /// The side this vertex belongs to.
    #[inline]
    pub fn side(self) -> Side {
        match self {
            Vertex::L(_) => Side::Left,
            Vertex::R(_) => Side::Right,
        }
    }
}

impl From<Left> for Vertex {
    fn from(u: Left) -> Self {
        Vertex::L(u)
    }
}

impl From<Right> for Vertex {
    fn from(v: Right) -> Self {
        Vertex::R(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_indexing_roundtrips() {
        assert_eq!(Left(7).index(), 7);
        assert_eq!(Right(9).index(), 9);
        assert_eq!(EdgeId(11).index(), 11);
    }

    #[test]
    fn side_flip_is_involutive() {
        assert_eq!(Side::Left.flip(), Side::Right);
        assert_eq!(Side::Right.flip(), Side::Left);
        assert_eq!(Side::Left.flip().flip(), Side::Left);
    }

    #[test]
    fn vertex_sides_match_constructors() {
        assert_eq!(Vertex::from(Left(0)).side(), Side::Left);
        assert_eq!(Vertex::from(Right(0)).side(), Side::Right);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(Left(1).to_string(), "u1");
        assert_eq!(Right(2).to_string(), "v2");
        assert_eq!(format!("{:?}", EdgeId(3)), "e3");
    }

    #[test]
    fn ids_are_orderable_and_hashable() {
        let mut v = vec![Left(3), Left(1), Left(2)];
        v.sort();
        assert_eq!(v, vec![Left(1), Left(2), Left(3)]);
        let mut set = std::collections::HashSet::new();
        set.insert(Right(5));
        assert!(set.contains(&Right(5)));
    }
}
