//! Property-based hostility tests for [`bigraph::codec`]: the decoder
//! and frame opener are fed untrusted bytes (disk, the cluster wire
//! protocol), so *any* input must produce an error value — never a
//! panic, never an unbounded allocation.

use bigraph::codec::{open_frame, seal_frame, CodecError, Decoder, Encoder};
use proptest::prelude::*;

const MAGIC: &[u8; 8] = b"HOSTILE1";

proptest! {
    /// Any payload survives a seal/open round trip bit-exactly.
    #[test]
    fn frames_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..512),
                         version in 0u32..16) {
        let framed = seal_frame(MAGIC, version, &payload);
        let (v, p) = open_frame(MAGIC, version, &framed).unwrap();
        prop_assert_eq!(v, version);
        prop_assert_eq!(p, payload.as_slice());
    }

    /// Truncating a valid frame anywhere is an error, not a panic.
    #[test]
    fn truncated_frames_are_errors(payload in proptest::collection::vec(any::<u8>(), 0..256),
                                   cut in 0usize..300) {
        let framed = seal_frame(MAGIC, 1, &payload);
        let cut = cut.min(framed.len().saturating_sub(1));
        prop_assert!(open_frame(MAGIC, 1, &framed[..cut]).is_err());
    }

    /// Flipping any bit of a valid frame is detected: the checksum
    /// covers magic, version, length, and payload alike.
    #[test]
    fn bit_flips_are_errors(payload in proptest::collection::vec(any::<u8>(), 0..256),
                            byte in 0usize..300,
                            bit in 0u8..8) {
        let mut framed = seal_frame(MAGIC, 1, &payload);
        let byte = byte % framed.len();
        framed[byte] ^= 1 << bit;
        prop_assert!(open_frame(MAGIC, 1, &framed).is_err());
    }

    /// Appending garbage past the declared length is rejected — a frame
    /// must account for every byte handed to it.
    #[test]
    fn over_length_frames_are_errors(payload in proptest::collection::vec(any::<u8>(), 0..256),
                                     garbage in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut framed = seal_frame(MAGIC, 1, &payload);
        framed.extend_from_slice(&garbage);
        prop_assert_eq!(open_frame(MAGIC, 1, &framed), Err(CodecError::Truncated));
    }

    /// Arbitrary bytes through the frame opener never panic, whatever
    /// they decode to.
    #[test]
    fn random_bytes_never_panic_the_frame_opener(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = open_frame(MAGIC, u32::MAX, &bytes);
    }

    /// Arbitrary bytes driven through every decoder read never panic,
    /// and a decoder never claims more bytes than it was given.
    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..256),
                                            ops in proptest::collection::vec(0u8..7, 0..64)) {
        let mut d = Decoder::new(&bytes);
        for op in ops {
            let before = d.remaining();
            match op {
                0 => { let _ = d.u8(); }
                1 => { let _ = d.u32(); }
                2 => { let _ = d.u64(); }
                3 => { let _ = d.f64(); }
                4 => { let _ = d.bytes(); }
                5 => { let _ = d.str(); }
                _ => { let _ = d.len_capped(16); }
            }
            prop_assert!(d.remaining() <= before);
            prop_assert!(d.remaining() <= bytes.len());
        }
    }

    /// `len_capped` admits a length iff the remaining bytes could hold
    /// that many minimum-size records — a hostile length prefix must
    /// not drive a giant allocation.
    #[test]
    fn len_capped_enforces_its_cap(len in 0u64..u64::MAX,
                                   min_record in 0usize..64,
                                   extra in 0usize..256) {
        let mut e = Encoder::new();
        e.u64(len);
        let mut buf = e.into_bytes();
        buf.resize(8 + extra, 0xAB);
        let mut d = Decoder::new(&buf);
        let fits = (len as u128) * (min_record.max(1) as u128) <= extra as u128;
        match d.len_capped(min_record) {
            Ok(n) => {
                prop_assert!(fits, "cap admitted {n} records into {extra} bytes");
                prop_assert_eq!(n as u64, len);
            }
            Err(CodecError::Truncated) => prop_assert!(!fits),
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other}"))),
        }
    }
}
