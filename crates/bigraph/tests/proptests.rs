//! Property-based tests for the bipartite-graph substrate.

use bigraph::{BitSet, EdgeId, GraphBuilder, Left, PossibleWorld, Right, WorldSampler};
use proptest::prelude::*;

/// Strategy: a small random uncertain bipartite graph as an edge list with
/// distinct endpoint pairs, quantized weights, and valid probabilities.
fn arb_edges(
    max_l: u32,
    max_r: u32,
    max_m: usize,
) -> impl Strategy<Value = Vec<(u32, u32, f64, f64)>> {
    proptest::collection::btree_set((0..max_l, 0..max_r), 0..=max_m).prop_flat_map(move |pairs| {
        let pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        let n = pairs.len();
        (
            Just(pairs),
            proptest::collection::vec(0u32..=320, n..=n),
            proptest::collection::vec(0.0f64..=1.0, n..=n),
        )
            .prop_map(|(pairs, ws, ps)| {
                pairs
                    .into_iter()
                    .zip(ws.iter().zip(ps.iter()))
                    .map(|((u, v), (&w, &p))| (u, v, w as f64 / 64.0, p))
                    .collect()
            })
    })
}

fn build(edges: &[(u32, u32, f64, f64)]) -> bigraph::UncertainBipartiteGraph {
    let mut b = GraphBuilder::new();
    for &(u, v, w, p) in edges {
        b.add_edge(Left(u), Right(v), w, p).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    /// Both CSR sides describe the same edge set, consistently.
    #[test]
    fn csr_sides_agree(edges in arb_edges(12, 12, 60)) {
        let g = build(&edges);
        prop_assert_eq!(g.num_edges(), edges.len());
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            prop_assert!(g.left_neighbors(u).any(|(r, ee)| r == v && ee == e));
            prop_assert!(g.right_neighbors(v).any(|(l, ee)| l == u && ee == e));
            prop_assert_eq!(g.find_edge(u, v), Some(e));
        }
        let left_sum: usize = (0..g.num_left()).map(|i| g.left_degree(Left(i as u32))).sum();
        let right_sum: usize = (0..g.num_right()).map(|i| g.right_degree(Right(i as u32))).sum();
        prop_assert_eq!(left_sum, g.num_edges());
        prop_assert_eq!(right_sum, g.num_edges());
    }

    /// The weight-descending edge order is a permutation sorted by weight.
    #[test]
    fn weight_order_is_sorted_permutation(edges in arb_edges(10, 10, 40)) {
        let g = build(&edges);
        let order: Vec<EdgeId> = g.edges_by_weight_desc().collect();
        prop_assert_eq!(order.len(), g.num_edges());
        let mut seen: Vec<u32> = order.iter().map(|e| e.0).collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..g.num_edges() as u32).collect();
        prop_assert_eq!(seen, expect);
        for w in order.windows(2) {
            prop_assert!(g.weight(w[0]) >= g.weight(w[1]));
        }
    }

    /// Possible-world probabilities over the full enumeration sum to 1.
    /// (Only for tiny graphs: 2^|E| worlds.)
    #[test]
    fn world_probabilities_sum_to_one(edges in arb_edges(4, 4, 8)) {
        let g = build(&edges);
        let m = g.num_edges();
        let mut total = 0.0;
        for mask in 0u32..(1 << m) {
            let mut w = PossibleWorld::empty(m);
            for i in 0..m {
                if mask >> i & 1 == 1 {
                    w.insert(EdgeId(i as u32));
                }
            }
            total += w.probability(&g);
        }
        prop_assert!((total - 1.0).abs() < 1e-9, "sum={}", total);
    }

    /// A sampled world only ever contains backbone edges, and respects
    /// deterministic (p∈{0,1}) edges.
    #[test]
    fn sampled_worlds_respect_deterministic_edges(
        edges in arb_edges(8, 8, 24),
        seed in 0u64..1000,
    ) {
        let mut edges = edges;
        // Force a deterministic pair if we have at least 2 edges.
        if edges.len() >= 2 {
            edges[0].3 = 0.0;
            edges[1].3 = 1.0;
        }
        let g = build(&edges);
        let mut rng = bigraph::trial_rng(seed, 0);
        let w = WorldSampler::sample(&g, &mut rng);
        if edges.len() >= 2 {
            prop_assert!(!w.contains(EdgeId(0)));
            prop_assert!(w.contains(EdgeId(1)));
        }
        prop_assert!(w.num_present() <= g.num_edges());
    }

    /// BitSet behaves like a reference HashSet under a random op sequence.
    #[test]
    fn bitset_matches_reference(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..300)) {
        let mut bs = BitSet::new(200);
        let mut reference = std::collections::HashSet::new();
        for (i, insert) in ops {
            if insert {
                bs.insert(i);
                reference.insert(i);
            } else {
                bs.remove(i);
                reference.remove(&i);
            }
        }
        prop_assert_eq!(bs.count_ones(), reference.len());
        for i in 0..200 {
            prop_assert_eq!(bs.contains(i), reference.contains(&i));
        }
        let mut from_iter: Vec<usize> = bs.iter_ones().collect();
        let mut expect: Vec<usize> = reference.into_iter().collect();
        expect.sort_unstable();
        from_iter.sort_unstable();
        prop_assert_eq!(from_iter, expect);
    }

    /// Vertex priority ranks form a permutation and are monotone in degree.
    #[test]
    fn priority_monotone_in_degree(edges in arb_edges(10, 10, 50)) {
        let g = build(&edges);
        let p = bigraph::VertexPriority::from_degrees(&g);
        for a in 0..g.num_left() as u32 {
            for b in 0..g.num_right() as u32 {
                let (da, db) = (g.left_degree(Left(a)), g.right_degree(Right(b)));
                if da > db {
                    prop_assert!(p.left(Left(a)) > p.right(Right(b)));
                } else if db > da {
                    prop_assert!(p.right(Right(b)) > p.left(Left(a)));
                }
            }
        }
    }

    /// Closed-form expected butterfly count equals the world-enumeration
    /// expectation on tiny graphs.
    #[test]
    fn expected_count_matches_enumeration(edges in arb_edges(4, 4, 9)) {
        let g = build(&edges);
        let closed = bigraph::expected::expected_butterfly_count(&g);
        // Reference: sum over worlds of Pr(W) * count(W).
        let m = g.num_edges();
        let mut reference = 0.0;
        for mask in 0u32..(1 << m) {
            let mut w = PossibleWorld::empty(m);
            for i in 0..m {
                if mask >> i & 1 == 1 {
                    w.insert(EdgeId(i as u32));
                }
            }
            let mut count = 0.0;
            // Count butterflies by common-neighbor pairs.
            for a in 0..g.num_left() as u32 {
                for b in (a + 1)..g.num_left() as u32 {
                    let mut common = 0u64;
                    for (v, e1) in g.left_neighbors(Left(a)) {
                        if !w.contains(e1) { continue; }
                        if let Some(e2) = g.find_edge(Left(b), v) {
                            if w.contains(e2) { common += 1; }
                        }
                    }
                    count += (common * common.saturating_sub(1) / 2) as f64;
                }
            }
            reference += w.probability(&g) * count;
        }
        prop_assert!((closed - reference).abs() < 1e-9, "{} vs {}", closed, reference);
    }

    /// Binary round-trip is bit-exact for any graph.
    #[test]
    fn binary_io_roundtrip(edges in arb_edges(10, 10, 40)) {
        let g = build(&edges);
        let mut buf = Vec::new();
        bigraph::io::write_binary(&g, &mut buf).unwrap();
        let g2 = bigraph::io::read_binary(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(g.num_left(), g2.num_left());
        prop_assert_eq!(g.num_right(), g2.num_right());
        for e in g.edge_ids() {
            prop_assert_eq!(g.endpoints(e), g2.endpoints(e));
            prop_assert_eq!(g.weight(e).to_bits(), g2.weight(e).to_bits());
            prop_assert_eq!(g.prob(e).to_bits(), g2.prob(e).to_bits());
        }
    }

    /// Cold-item reward never decreases weights, is monotone in the
    /// reward parameter, and leaves structure and probabilities alone.
    #[test]
    fn cold_reward_monotonicity(edges in arb_edges(8, 8, 30), r1 in 0.0f64..2.0, r2 in 0.0f64..2.0) {
        let g = build(&edges);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let g_lo = bigraph::transform::reward_cold_items(&g, lo);
        let g_hi = bigraph::transform::reward_cold_items(&g, hi);
        for e in g.edge_ids() {
            prop_assert_eq!(g_lo.endpoints(e), g.endpoints(e));
            prop_assert_eq!(g_lo.prob(e), g.prob(e));
            // Quantization tolerance of half a grid step.
            prop_assert!(g_hi.weight(e) + 1.0 / 128.0 >= g_lo.weight(e));
        }
    }

    /// Edge-list round-trip: write then read reproduces the graph exactly.
    #[test]
    fn io_roundtrip(edges in arb_edges(10, 10, 40)) {
        let g = build(&edges);
        let mut buf = Vec::new();
        bigraph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = bigraph::io::read_edge_list(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for e in g.edge_ids() {
            prop_assert_eq!(g.endpoints(e), g2.endpoints(e));
            prop_assert_eq!(g.weight(e), g2.weight(e));
            prop_assert_eq!(g.prob(e), g2.prob(e));
        }
    }
}
