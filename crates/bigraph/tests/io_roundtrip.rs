//! Cross-format serialization tests for `bigraph::io`: the binary↔text
//! round-trip property, and the error paths a server loading untrusted
//! graph files has to survive (truncated binaries, malformed lines).

use bigraph::builder::BuildError;
use bigraph::io::{read_binary, read_edge_list, write_binary, write_edge_list, IoError};
use bigraph::{GraphBuilder, Left, Right, UncertainBipartiteGraph};
use proptest::prelude::*;
use std::io::Cursor;

/// Strategy: a small random uncertain bipartite graph as an edge list with
/// distinct endpoint pairs, quantized weights, and valid probabilities.
/// (Same shape as `proptests.rs::arb_edges`; probabilities are quantized
/// too so both formats carry them exactly.)
fn arb_edges(
    max_l: u32,
    max_r: u32,
    max_m: usize,
) -> impl Strategy<Value = Vec<(u32, u32, f64, f64)>> {
    proptest::collection::btree_set((0..max_l, 0..max_r), 0..=max_m).prop_flat_map(move |pairs| {
        let pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        let n = pairs.len();
        (
            Just(pairs),
            proptest::collection::vec(0u32..=320, n..=n),
            proptest::collection::vec(0u32..=256, n..=n),
        )
            .prop_map(|(pairs, ws, ps)| {
                pairs
                    .into_iter()
                    .zip(ws.iter().zip(ps.iter()))
                    .map(|((u, v), (&w, &p))| (u, v, w as f64 / 64.0, p as f64 / 256.0))
                    .collect()
            })
    })
}

fn build(edges: &[(u32, u32, f64, f64)]) -> UncertainBipartiteGraph {
    let mut b = GraphBuilder::new();
    for &(u, v, w, p) in edges {
        b.add_edge(Left(u), Right(v), w, p).unwrap();
    }
    b.build().unwrap()
}

fn assert_same_graph(a: &UncertainBipartiteGraph, b: &UncertainBipartiteGraph) {
    assert_eq!(a.num_left(), b.num_left());
    assert_eq!(a.num_right(), b.num_right());
    assert_eq!(a.num_edges(), b.num_edges());
    for e in a.edge_ids() {
        assert_eq!(a.endpoints(e), b.endpoints(e));
        assert_eq!(a.weight(e).to_bits(), b.weight(e).to_bits());
        assert_eq!(a.prob(e).to_bits(), b.prob(e).to_bits());
    }
}

proptest! {
    /// Binary↔text cross-format round-trip: a graph written as text, read
    /// back, re-written as binary, and read again is bit-identical —
    /// and so is the reverse direction. Rust's `{}` float formatting is
    /// shortest-roundtrip, so even the text leg is exact.
    #[test]
    fn binary_and_text_formats_roundtrip_each_other(edges in arb_edges(12, 12, 48)) {
        let g = build(&edges);

        // text → binary
        let mut text = Vec::new();
        write_edge_list(&g, &mut text).unwrap();
        let from_text = read_edge_list(Cursor::new(&text)).unwrap();
        let mut bin = Vec::new();
        write_binary(&from_text, &mut bin).unwrap();
        let from_bin = read_binary(Cursor::new(&bin)).unwrap();
        assert_same_graph(&g, &from_bin);

        // binary → text
        let mut bin2 = Vec::new();
        write_binary(&g, &mut bin2).unwrap();
        let from_bin2 = read_binary(Cursor::new(&bin2)).unwrap();
        let mut text2 = Vec::new();
        write_edge_list(&from_bin2, &mut text2).unwrap();
        let from_text2 = read_edge_list(Cursor::new(&text2)).unwrap();
        assert_same_graph(&g, &from_text2);
    }

    /// Truncating a binary graph file at ANY prefix length yields an
    /// error, never a panic or a silently short graph.
    #[test]
    fn truncated_binary_always_errors(edges in arb_edges(6, 6, 12), frac in 0.0f64..1.0) {
        let g = build(&edges);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let cut = (((buf.len() as f64) * frac) as usize).min(buf.len() - 1);
        buf.truncate(cut);
        prop_assert!(read_binary(Cursor::new(&buf)).is_err());
    }
}

#[test]
fn truncated_binary_mid_record_reports_progress() {
    let g = build(&[(0, 0, 1.0, 0.5), (0, 1, 2.0, 0.5), (1, 0, 3.0, 0.5)]);
    let mut buf = Vec::new();
    write_binary(&g, &mut buf).unwrap();
    // Keep the header and first record, cut into the middle of the second.
    buf.truncate(8 + 3 * 8 + 24 + 10);
    match read_binary(Cursor::new(&buf)).unwrap_err() {
        IoError::Parse { line, msg } => {
            assert_eq!(line, 2, "error should point at the second record");
            assert!(msg.contains("1 of 3"), "{msg}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn truncated_binary_header_errors() {
    let g = build(&[(0, 0, 1.0, 0.5)]);
    let mut buf = Vec::new();
    write_binary(&g, &mut buf).unwrap();
    for cut in [0, 4, 8, 12, 20, 31] {
        let mut short = buf.clone();
        short.truncate(cut);
        assert!(
            read_binary(Cursor::new(&short)).is_err(),
            "prefix of {cut} bytes should not parse"
        );
    }
}

#[test]
fn malformed_line_bad_arity_too_few_fields() {
    for (input, missing) in [("0\n", "right"), ("0 1\n", "weight"), ("0 1 2.0\n", "prob")] {
        match read_edge_list(Cursor::new(input)).unwrap_err() {
            IoError::Parse { line: 1, msg } => assert!(msg.contains(missing), "{input:?}: {msg}"),
            other => panic!("{input:?}: unexpected {other:?}"),
        }
    }
}

#[test]
fn malformed_line_bad_arity_too_many_fields() {
    match read_edge_list(Cursor::new("0 1 2.0 0.5 surplus\n")).unwrap_err() {
        IoError::Parse { line: 1, msg } => assert!(msg.contains("trailing"), "{msg}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn malformed_line_negative_weight() {
    match read_edge_list(Cursor::new("0 0 1.0 0.5\n1 1 -3.5 0.5\n")).unwrap_err() {
        IoError::Build(BuildError::InvalidWeight { w, .. }) => assert_eq!(w, -3.5),
        other => panic!("unexpected {other:?}"),
    }
    // The binary reader runs the same validation.
    let mut buf = Vec::new();
    buf.extend_from_slice(b"UBGRAPH1");
    buf.extend_from_slice(&1u64.to_le_bytes());
    buf.extend_from_slice(&1u64.to_le_bytes());
    buf.extend_from_slice(&1u64.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf.extend_from_slice(&(-3.5f64).to_le_bytes());
    buf.extend_from_slice(&0.5f64.to_le_bytes());
    assert!(matches!(
        read_binary(Cursor::new(&buf)).unwrap_err(),
        IoError::Build(BuildError::InvalidWeight { .. })
    ));
}

#[test]
fn malformed_line_probability_out_of_range() {
    for p in ["1.5", "-0.25", "inf", "NaN"] {
        let input = format!("0 0 1.0 {p}\n");
        let err = read_edge_list(Cursor::new(input.as_bytes())).unwrap_err();
        assert!(
            matches!(err, IoError::Build(BuildError::InvalidProbability { .. })),
            "p={p}: unexpected {err:?}"
        );
    }
    // Boundary values are fine.
    let g = read_edge_list(Cursor::new("0 0 1.0 0\n0 1 1.0 1\n")).unwrap();
    assert_eq!(g.num_edges(), 2);
}

#[test]
fn malformed_line_error_reports_correct_line_number() {
    let input = "# header comment\n0 0 1.0 0.5\n\n1 1 bogus 0.5\n";
    match read_edge_list(Cursor::new(input)).unwrap_err() {
        IoError::Parse { line, msg } => {
            assert_eq!(line, 4);
            assert!(msg.contains("weight"), "{msg}");
        }
        other => panic!("unexpected {other:?}"),
    }
}
