//! Hostility and round-trip tests for the `UBGCONT1` graph container
//! (see [`bigraph::storage`] and docs/STORAGE.md). Container files are
//! untrusted bytes from disk: truncation, bit flips, bogus section
//! tables, and future versions must all come back as error values —
//! never a panic, never an unbounded allocation. And a graph that
//! *does* materialize must be bit-identical to the one that was
//! written, `accept` thresholds and weight-descending order included.

use bigraph::codec::fnv1a64;
use bigraph::{
    read_container_path, section_checksum, write_container, write_container_path, ContainerReader,
    GraphBuilder, Left, Right, UncertainBipartiteGraph, CONTAINER_MAGIC, CONTAINER_VERSION,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch path per call, cleaned up by [`Scratch::drop`].
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        Scratch(
            std::env::temp_dir().join(format!("ubgc-hostility-{}-{n}.ubgc", std::process::id())),
        )
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn fig1() -> UncertainBipartiteGraph {
    let mut b = GraphBuilder::new();
    b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
    b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
    b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
    b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
    b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
    b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
    b.build().unwrap()
}

fn container_bytes(g: &UncertainBipartiteGraph) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_container(g, &mut bytes).unwrap();
    bytes
}

/// The strongest available equality: two graphs whose container
/// encodings agree byte-for-byte agree on every array the solvers
/// index — offsets, adjacency, endpoints, weights, probs, `accept`,
/// the weight-descending order and its gathered arrays, and the
/// degree-rank relabeling.
fn assert_bit_identical(a: &UncertainBipartiteGraph, b: &UncertainBipartiteGraph) {
    assert_eq!(container_bytes(a), container_bytes(b));
}

/// Section-table layout constants, mirrored from the format doc.
const ENTRY_BYTES: usize = 28;
const N_SECTIONS: usize = 15;
const HEADER_LEN: usize = 16 + N_SECTIONS * ENTRY_BYTES + 8;

/// Recomputes the trailing header checksum after a header mutation, so
/// tests can probe *semantic* rejections (bad version, bogus table)
/// separately from checksum rejections.
fn reseal_header(bytes: &mut [u8], header_len: usize) {
    let sum = fnv1a64(&bytes[..header_len - 8]);
    bytes[header_len - 8..header_len].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn truncation_at_every_prefix_is_an_error_not_a_panic() {
    let scratch = Scratch::new();
    let bytes = container_bytes(&fig1());
    for cut in 0..bytes.len() {
        std::fs::write(&scratch.0, &bytes[..cut]).unwrap();
        assert!(
            read_container_path(&scratch.0).is_err(),
            "prefix of {cut} bytes must not materialize"
        );
    }
}

#[test]
fn future_version_is_rejected_at_open() {
    let scratch = Scratch::new();
    let mut bytes = container_bytes(&fig1());
    bytes[8..12].copy_from_slice(&(CONTAINER_VERSION + 1).to_le_bytes());
    reseal_header(&mut bytes, HEADER_LEN);
    std::fs::write(&scratch.0, &bytes).unwrap();
    let err = ContainerReader::open(&scratch.0).map(|_| ()).unwrap_err();
    assert!(
        err.to_string().contains("version"),
        "want a version error, got: {err}"
    );
}

#[test]
fn unknown_section_ids_are_skipped() {
    // Append a 16-byte section with an id this reader has never heard
    // of. The header grows by one table entry, which shifts every
    // payload offset by ENTRY_BYTES; a forward-compatible reader must
    // skip the stranger and still materialize the original graph.
    let g = fig1();
    let old = container_bytes(&g);
    let stranger_payload = [0xABu8; 16];

    let n = u32::from_le_bytes(old[12..16].try_into().unwrap()) as usize;
    assert_eq!(n, N_SECTIONS);
    let old_header_len = 16 + n * ENTRY_BYTES + 8;

    let mut header = Vec::new();
    header.extend_from_slice(CONTAINER_MAGIC);
    header.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
    header.extend_from_slice(&((n + 1) as u32).to_le_bytes());
    for chunk in old[16..16 + n * ENTRY_BYTES].chunks_exact(ENTRY_BYTES) {
        header.extend_from_slice(&chunk[0..4]); // id unchanged
        let offset = u64::from_le_bytes(chunk[4..12].try_into().unwrap());
        header.extend_from_slice(&(offset + ENTRY_BYTES as u64).to_le_bytes());
        header.extend_from_slice(&chunk[12..28]); // len + checksum unchanged
    }
    // The stranger, placed after every known payload.
    header.extend_from_slice(&999u32.to_le_bytes());
    header.extend_from_slice(&((old.len() + ENTRY_BYTES) as u64).to_le_bytes());
    header.extend_from_slice(&(stranger_payload.len() as u64).to_le_bytes());
    header.extend_from_slice(&section_checksum(999, &stranger_payload).to_le_bytes());
    let sum = fnv1a64(&header);
    header.extend_from_slice(&sum.to_le_bytes());

    let mut file = header;
    file.extend_from_slice(&old[old_header_len..]);
    file.extend_from_slice(&stranger_payload);

    let scratch = Scratch::new();
    std::fs::write(&scratch.0, &file).unwrap();
    let back = read_container_path(&scratch.0).unwrap();
    assert_bit_identical(&g, &back);
}

#[test]
fn convert_cycle_preserves_solver_facing_arrays() {
    // Build → write → attach ≡ original, spot-checked through the
    // public accessors the solvers actually use (the byte-level check
    // lives in assert_bit_identical).
    let g = fig1();
    let scratch = Scratch::new();
    write_container_path(&g, &scratch.0).unwrap();
    let back = read_container_path(&scratch.0).unwrap();
    assert_eq!(g.num_left(), back.num_left());
    assert_eq!(g.num_right(), back.num_right());
    assert_eq!(g.num_edges(), back.num_edges());
    assert_eq!(g.accept_thresholds(), back.accept_thresholds());
    assert_eq!(g.desc_edge_ids(), back.desc_edge_ids());
    assert_eq!(g.desc_weights(), back.desc_weights());
    assert_eq!(g.desc_accepts(), back.desc_accepts());
    assert_eq!(g.left_ranks(), back.left_ranks());
    let ids: Vec<_> = g.edges_by_weight_desc().collect();
    let back_ids: Vec<_> = back.edges_by_weight_desc().collect();
    assert_eq!(ids, back_ids);
    assert_bit_identical(&g, &back);
}

/// Random small graphs for the proptests: deduped (left, right) pairs
/// with finite positive weights and probabilities in (0, 1].
fn arb_graph() -> impl Strategy<Value = UncertainBipartiteGraph> {
    proptest::collection::vec((0u32..8, 0u32..8, 1u32..1_000, 1u32..=1_000), 0..24).prop_map(
        |edges| {
            let mut b = GraphBuilder::new();
            let mut seen = std::collections::HashSet::new();
            for (l, r, w, p) in edges {
                if seen.insert((l, r)) {
                    b.add_edge(Left(l), Right(r), w as f64 / 16.0, p as f64 / 1_000.0)
                        .unwrap();
                }
            }
            b.build().unwrap()
        },
    )
}

proptest! {
    /// build → convert → attach reproduces the original graph
    /// bit-identically, `accept` and `edges_by_weight_desc` included.
    #[test]
    fn round_trip_is_bit_identical(g in arb_graph()) {
        let scratch = Scratch::new();
        let written = write_container_path(&g, &scratch.0).unwrap();
        let back = read_container_path(&scratch.0).unwrap();
        prop_assert_eq!(container_bytes(&g), container_bytes(&back));
        // And the attach-time checksum is stable across re-opens.
        let reopened = ContainerReader::open(&scratch.0).unwrap();
        prop_assert_eq!(written, reopened.content_checksum());
    }

    /// Flipping any bit anywhere in a container is detected: header
    /// flips fail the header checksum (or a semantic check), payload
    /// flips fail that section's checksum at materialize time.
    #[test]
    fn any_bit_flip_is_an_error(byte in 0usize..10_000, bit in 0u8..8) {
        let scratch = Scratch::new();
        let mut bytes = container_bytes(&fig1());
        let byte = byte % bytes.len();
        bytes[byte] ^= 1 << bit;
        std::fs::write(&scratch.0, &bytes).unwrap();
        prop_assert!(read_container_path(&scratch.0).is_err(),
                     "flip at byte {} bit {} must not materialize", byte, bit);
    }

    /// Arbitrary bytes never panic the reader, however they parse.
    #[test]
    fn random_bytes_never_panic_the_reader(bytes in proptest::collection::vec(any::<u8>(), 0..2_048)) {
        let scratch = Scratch::new();
        std::fs::write(&scratch.0, &bytes).unwrap();
        let _ = read_container_path(&scratch.0);
    }

    /// A hostile section table (random ids/offsets/lengths under a
    /// resealed header checksum) either fails bounds/checksum/invariant
    /// validation, or — when the lie happens to be harmless — still
    /// materializes the *original* graph. It can never conjure a
    /// different one.
    #[test]
    fn corrupt_section_tables_cannot_change_the_graph(entry in 0usize..N_SECTIONS,
                                                      field_off in 0usize..ENTRY_BYTES,
                                                      flip in 1u8..=255) {
        let g = fig1();
        let scratch = Scratch::new();
        let mut bytes = container_bytes(&g);
        let pos = 16 + entry * ENTRY_BYTES + field_off;
        bytes[pos] ^= flip; // nonzero XOR: the byte always changes
        reseal_header(&mut bytes, HEADER_LEN);
        std::fs::write(&scratch.0, &bytes).unwrap();
        if let Ok(back) = read_container_path(&scratch.0) {
            prop_assert_eq!(container_bytes(&g), container_bytes(&back));
        }
    }
}
