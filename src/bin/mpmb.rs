//! `mpmb` — command-line MPMB search over edge-list files.
//!
//! ```text
//! mpmb solve    --input G.tsv [--method os|mcvp|ols|ols-kl|fast] [--trials N]
//!               [--prep N] [--seed N] [--delta F] [--top-k K]
//!               [--diverse MAX_SHARED] [--threads N] [--progress EVERY]
//!               [--trace-json FILE] [--profile] [--mem-stats]
//! mpmb exact    --input G.tsv [--max-uncertain N] [--top-k K]
//! mpmb query    --input G.tsv --u1 A --u2 B --v1 C --v2 D [--trials N] [--seed N]
//! mpmb count    --input G.tsv [--method exact|fast] [--trials N] [--seed N]
//!               [--delta F] [--threads N] [--mem-stats]
//! mpmb stats    --input G.tsv
//! mpmb generate --dataset abide|movielens|jester|protein --scale F
//!               [--seed N] [--output FILE]
//! mpmb convert  --input G.tsv --output G.ubgc
//! mpmb serve    [--listen ADDR] [--threads N] [--queue N] [--timeout-ms N]
//!               [--cache-capacity N] [--max-solver-threads N]
//!               [--mem-budget BYTES[k|m|g]]
//!               [--trace off|stderr|FILE] [--trace-max-bytes N]
//!               [--trace-ring N] [--budget-header] [--graph NAME=SPEC]...
//!               [--checkpoint-dir DIR] [--checkpoint-every-ms N]
//!               [--fault-plan SPEC]
//!               [--role single|coordinator|worker] [--workers ADDR,...]
//!               [--probe-interval-ms N] [--fast-escalate]
//! mpmb loadgen  [--target ADDR]... [--requests N] [--concurrency N]
//!               [--graph NAME[,NAME]...] [--method M] [--trials N] [--seed N]
//!               [--vary-seed [true|false]] [--retries N]
//! ```
//!
//! Edge-list format: `LEFT RIGHT WEIGHT PROB` per line (tabs or spaces),
//! `#` comments allowed. Graph SPECs for `serve` are file paths or
//! `dataset:NAME[:scale[:seed]]` (see docs/SERVING.md). Observability
//! flags are documented in docs/OBSERVABILITY.md.

use datasets::Dataset;
use mpmb::prelude::*;
use mpmb_core::{top_k_diverse, Distribution};
use mpmb_serve::solve::{advance_fast, advance_solve, Outcome};
use mpmb_serve::Cancel;
use std::process::exit;
use std::sync::Arc;

/// Counting allocator so `--mem-stats` (and the `mpmb_peak_rss_bytes`
/// gauge of `mpmb serve`) report real peak allocations.
#[global_allocator]
static ALLOC: memtrack::CountingAllocator = memtrack::CountingAllocator;

const USAGE: &str = "usage: mpmb <subcommand> [--flag value]...

subcommands:
  solve     estimate the MPMB of an edge-list graph
            --input FILE  [--method os|mcvp|ols|ols-kl|fast] [--trials N]
            [--prep N] [--seed N] [--delta F] [--top-k K]
            [--diverse MAX_SHARED] [--threads N]
            [--progress EVERY] [--trace-json FILE] [--profile] [--mem-stats]
            (--method fast prints a sublinear estimate of the expected
            butterfly count with a certified (1-delta) confidence
            interval instead of a butterfly ranking; --delta defaults
            to 0.05 and only applies to fast.
            --threads applies to every method; results are identical at
            any thread count, with or without any of the flags below.
            --progress prints trials/sec and the running MPMB estimate to
            stderr every EVERY trials and works with every method at any
            thread count. --trace-json appends JSON-lines span traces to
            FILE; --profile prints a phase breakdown table to stderr;
            --mem-stats prints the solve's peak allocation to stderr)
  exact     exact distribution by possible-world enumeration
            --input FILE  [--max-uncertain N] [--top-k K]
  query     conditioned P(B) estimate for one butterfly
            --input FILE  --u1 A --u2 B --v1 C --v2 D  [--trials N] [--seed N]
  count     butterfly-count distribution over possible worlds
            --input FILE  [--method exact|fast] [--trials N] [--seed N]
            [--delta F] [--threads N] [--mem-stats]
            (--method fast skips the per-world exact counts and prints
            a sublinear estimate with a (1-delta) confidence interval)
  stats     structural statistics of a graph
            --input FILE
  generate  synthetic Table III stand-in datasets
            --dataset abide|movielens|jester|protein  [--scale F] [--seed N]
            [--output FILE]
            (an `.ubg` output writes the compact binary format; `.ubgc`
            writes the mmap-ready container, see docs/STORAGE.md)
  convert   re-encode a graph into the on-disk container format
            --input FILE  --output FILE.ubgc
            (the container attaches without a parse step: `mpmb serve`
            maps its sections on demand and can evict/reload the graph
            under --mem-budget; see docs/STORAGE.md)
  serve     long-running HTTP query daemon (see docs/SERVING.md)
            [--listen ADDR] [--threads N] [--queue N] [--timeout-ms N]
            [--cache-capacity N] [--max-solver-threads N]
            [--mem-budget BYTES[k|m|g]]
            [--trace off|stderr|FILE] [--trace-max-bytes N]
            [--trace-ring N] [--budget-header] [--graph NAME=SPEC]...
            [--checkpoint-dir DIR] [--checkpoint-every-ms N]
            [--fault-plan SPEC]
            [--role single|coordinator|worker] [--workers ADDR,...]
            [--probe-interval-ms N] [--fast-escalate]
            (--fast-escalate makes a completed method=fast answer whose
            CI misses the requested relative error seed the exact os
            partial in the result cache, so a method=os retry refines
            toward the exact answer instead of starting at trial zero.
            --trace-max-bytes rotates a --trace FILE at N bytes,
            keeping one prior generation as FILE.1.
            --trace-ring sets how many solve summaries GET /debug/trace
            retains (default 64, must be at least 1).
            --budget-header adds an X-Mpmb-Budget response header with
            the per-bucket deadline spend of each solve-like request.
            --mem-budget bounds resident graph bytes: when exceeded,
            cold container-backed graphs are evicted and re-materialize
            on next use, bit-identically. 0 = unlimited.
            --checkpoint-dir makes the registry and resumable partial
            results durable: a restarted server restores them and
            re-issued requests resume instead of recomputing.
            --fault-plan injects deterministic faults for resilience
            testing, e.g. `seed=7,reset=0.1,slow=0.05,panic_at=3`; the
            MPMB_FAULT_PLAN environment variable is the fallback.
            --role coordinator scatters each solve across --workers
            (repeatable or comma-separated) and returns byte-identical
            answers at any worker count; see docs/CLUSTER.md)
  loadgen   closed-loop load generator against a running daemon
            [--target ADDR]... [--requests N] [--concurrency N]
            [--graph NAME[,NAME]...] [--method M] [--trials N] [--seed N]
            [--vary-seed [true|false]] [--retries N]
            (--target and --graph repeat or comma-split; requests
            round-robin over both lists. --retries N retries transport
            errors/429/503 up to N times per request with backoff,
            honoring Retry-After. Every request carries a deterministic
            X-Request-Id derived from --seed and the request ordinal;
            the report names the p99-worst ids for trace lookup)

Edge-list format: `LEFT RIGHT WEIGHT PROB` per line, `#` comments allowed.
`--help` anywhere prints this text.";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `mpmb --help` for usage");
    exit(2)
}

/// Flags that are on/off switches: the value may be omitted
/// (`--vary-seed` reads as `--vary-seed true`).
const BOOL_FLAGS: &[&str] = &[
    "vary-seed",
    "profile",
    "mem-stats",
    "budget-header",
    "fast-escalate",
];

/// Minimal flag parser: `--name value` pairs after the subcommand.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                fail(&format!("unexpected argument `{a}`"));
            };
            if BOOL_FLAGS.contains(&name) {
                let value = match it.peek().map(|s| s.as_str()) {
                    Some("true") | Some("false") => it.next().unwrap().clone(),
                    _ => "true".to_string(),
                };
                pairs.push((name.to_string(), value));
                continue;
            }
            let Some(value) = it.next() else {
                fail(&format!("--{name} requires a value"));
            };
            pairs.push((name.to_string(), value.clone()));
        }
        Flags(pairs)
    }

    /// Rejects flags outside `allowed`, reporting every unknown flag at
    /// once instead of dying on the first.
    fn expect(&self, allowed: &[&str]) {
        let unknown: Vec<String> = self
            .0
            .iter()
            .filter(|(n, _)| !allowed.contains(&n.as_str()))
            .map(|(n, _)| format!("--{n}"))
            .collect();
        if !unknown.is_empty() {
            fail(&format!(
                "unknown flag{} {} (allowed: {})",
                if unknown.len() > 1 { "s" } else { "" },
                unknown.join(", "),
                allowed
                    .iter()
                    .map(|a| format!("--{a}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of a repeatable flag, in order (e.g. `--graph`).
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.0
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| fail(&format!("cannot parse --{name} value `{v}`"))),
        }
    }
}

/// Parses a `--mem-budget` value: raw bytes, or with a binary
/// `k`/`m`/`g` suffix (case-insensitive). `0` disables the budget.
fn parse_mem_budget(v: &str) -> u64 {
    let (digits, mult) = match v.trim().to_ascii_lowercase() {
        s if s.ends_with('k') => (s[..s.len() - 1].to_string(), 1u64 << 10),
        s if s.ends_with('m') => (s[..s.len() - 1].to_string(), 1u64 << 20),
        s if s.ends_with('g') => (s[..s.len() - 1].to_string(), 1u64 << 30),
        s => (s, 1),
    };
    let n: u64 = digits
        .parse()
        .unwrap_or_else(|_| fail(&format!("cannot parse --mem-budget value `{v}`")));
    n.checked_mul(mult)
        .unwrap_or_else(|| fail(&format!("--mem-budget value `{v}` overflows")))
}

fn load(flags: &Flags) -> UncertainBipartiteGraph {
    let path = flags
        .get("input")
        .unwrap_or_else(|| fail("--input is required"));
    // Dispatches on the binary magic, so both .tsv and .ubg files work.
    bigraph::io::read_auto(std::path::Path::new(path))
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

fn print_ranking(
    g: &UncertainBipartiteGraph,
    dist: &Distribution,
    k: usize,
    diverse: Option<usize>,
) {
    let ranking = match diverse {
        Some(max_shared) => top_k_diverse(dist, k, max_shared),
        None => dist.top_k(k),
    };
    if ranking.is_empty() {
        println!("no butterflies found");
        return;
    }
    println!("rank\tbutterfly\tweight\tPr[E(B)]\tP(B)");
    for (i, (b, p)) in ranking.iter().enumerate() {
        println!(
            "{}\t{b}\t{}\t{:.6}\t{:.6}",
            i + 1,
            b.weight(g).unwrap_or(f64::NAN),
            b.existence_prob(g).unwrap_or(f64::NAN),
            p
        );
    }
}

fn cmd_solve(flags: &Flags) {
    flags.expect(&[
        "input",
        "method",
        "trials",
        "prep",
        "seed",
        "delta",
        "top-k",
        "diverse",
        "threads",
        "progress",
        "trace-json",
        "profile",
        "mem-stats",
    ]);
    let g = load(flags);
    let method = flags.get("method").unwrap_or("ols");
    let trials: u64 = flags.get_parsed("trials", 20_000);
    let prep: u64 = flags.get_parsed("prep", 100);
    let seed: u64 = flags.get_parsed("seed", 42);
    let k: usize = flags.get_parsed("top-k", 1);
    let diverse = flags.get("diverse").map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail(&format!("cannot parse --diverse value `{v}`")))
    });
    let threads: usize = flags.get_parsed("threads", 1);
    let progress: Option<u64> = flags.get("progress").map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail(&format!("cannot parse --progress value `{v}`")))
    });
    if progress == Some(0) {
        fail("--progress must be at least 1");
    }
    let profile_on: bool = flags.get_parsed("profile", false);
    let mem_stats: bool = flags.get_parsed("mem-stats", false);
    if let Some(path) = flags.get("trace-json") {
        obs::set_sink_file(path)
            .unwrap_or_else(|e| fail(&format!("cannot open --trace-json {path}: {e}")));
    }

    // Observability rides in a thread-local context: solver spans feed
    // the profile (and, with --trace-json, the sink) without touching
    // the trial loop's results — proptests pin bit-identity.
    let profile = Arc::new(obs::Profile::new());
    let _obs_guard = (profile_on || flags.get("trace-json").is_some()).then(|| {
        let trace_id = obs::next_trace_id();
        obs::install(obs::ObsCtx {
            trace_id: Some(Arc::clone(&trace_id)),
            span: Some(obs::SpanContext::root(trace_id)),
            profile: Some(Arc::clone(&profile)),
            solver: None,
        })
    });

    // The fast tier estimates the expected count instead of a ranking;
    // it shares the resumable driver (and --progress slicing) but
    // prints an estimate with its certified confidence interval.
    if method == "fast" {
        let delta: f64 = flags.get_parsed("delta", 0.05);
        if !(delta > 0.0 && delta < 1.0) {
            fail("--delta must be in (0, 1)");
        }
        memtrack::reset_peak();
        let started = std::time::Instant::now();
        let mut state = None;
        let est = loop {
            let cancel = match progress {
                Some(every) => Cancel::after_trials(every),
                None => Cancel::never(),
            };
            let p = advance_fast(&g, trials, seed, delta, threads, state.take(), &cancel)
                .unwrap_or_else(|e| fail(&e));
            match p.outcome {
                Outcome::Done(est) => break est,
                Outcome::Incomplete(s) => {
                    let rate = p.trials_done as f64 / started.elapsed().as_secs_f64().max(1e-9);
                    eprintln!(
                        "progress: {}/{} trials ({}), {rate:.0} trials/sec",
                        p.trials_done,
                        p.trials_requested,
                        s.kind()
                    );
                    state = Some(s);
                }
            }
        };
        let wall = started.elapsed().as_secs_f64();
        println!("expected butterflies ~ {:.6}", est.estimate);
        println!(
            "{:.0}% CI [{:.6}, {:.6}]  relative error {:.4}  ({} trials)",
            100.0 * (1.0 - est.delta),
            est.ci_low,
            est.ci_high,
            est.relative_error,
            est.trials
        );
        if profile_on {
            eprintln!("phase profile ({wall:.3}s wall):");
            eprint!("{}", obs::render_table(&profile.snapshot(), wall));
        }
        if mem_stats {
            let peak = memtrack::peak_bytes();
            eprintln!(
                "peak allocation: {peak} bytes ({:.1} MiB)",
                peak as f64 / (1024.0 * 1024.0)
            );
        }
        return;
    }

    // Every method runs through the server's resumable driver: with
    // --progress the run is sliced every EVERY trials and the running
    // leader printed between slices; results are bit-identical to an
    // unsliced run at any thread count.
    memtrack::reset_peak();
    let started = std::time::Instant::now();
    let mut state = None;
    let dist = loop {
        let cancel = match progress {
            Some(every) => Cancel::after_trials(every),
            None => Cancel::never(),
        };
        let p = advance_solve(
            &g,
            method,
            trials,
            prep,
            seed,
            threads,
            state.take(),
            &cancel,
        )
        .unwrap_or_else(|e| fail(&e));
        match p.outcome {
            Outcome::Done(d) => break d,
            Outcome::Incomplete(s) => {
                let rate = p.trials_done as f64 / started.elapsed().as_secs_f64().max(1e-9);
                match s.leader() {
                    Some((b, est)) => eprintln!(
                        "progress: {}/{} trials ({}), {rate:.0} trials/sec, leader {b} p~{est:.6}",
                        p.trials_done,
                        p.trials_requested,
                        s.kind()
                    ),
                    None => eprintln!(
                        "progress: {}/{} trials ({}), {rate:.0} trials/sec, no leader yet",
                        p.trials_done,
                        p.trials_requested,
                        s.kind()
                    ),
                }
                state = Some(s);
            }
        }
    };
    let wall = started.elapsed().as_secs_f64();
    print_ranking(&g, &dist, k, diverse);
    if profile_on {
        eprintln!("phase profile ({wall:.3}s wall):");
        eprint!("{}", obs::render_table(&profile.snapshot(), wall));
    }
    if mem_stats {
        let peak = memtrack::peak_bytes();
        eprintln!(
            "peak allocation: {peak} bytes ({:.1} MiB)",
            peak as f64 / (1024.0 * 1024.0)
        );
    }
}

fn cmd_exact(flags: &Flags) {
    flags.expect(&["input", "max-uncertain", "top-k"]);
    let g = load(flags);
    let limit: u32 = flags.get_parsed("max-uncertain", 22);
    let k: usize = flags.get_parsed("top-k", 10);
    match mpmb_core::exact_distribution(
        &g,
        ExactConfig {
            max_uncertain_edges: limit,
        },
    ) {
        Ok(dist) => print_ranking(&g, &dist, k, None),
        Err(e) => fail(&e.to_string()),
    }
}

fn cmd_query(flags: &Flags) {
    flags.expect(&["input", "u1", "u2", "v1", "v2", "trials", "seed"]);
    let g = load(flags);
    let need = |n: &str| -> u32 {
        flags
            .get(n)
            .unwrap_or_else(|| fail(&format!("--{n} is required")))
            .parse()
            .unwrap_or_else(|_| fail(&format!("cannot parse --{n}")))
    };
    let b = mpmb_core::Butterfly::new(
        Left(need("u1")),
        Left(need("u2")),
        Right(need("v1")),
        Right(need("v2")),
    );
    let trials: u64 = flags.get_parsed("trials", 20_000);
    let seed: u64 = flags.get_parsed("seed", 42);
    match mpmb_core::estimate_prob_of(&g, &b, trials, seed) {
        None => fail(&format!("{b} is not a butterfly of the backbone")),
        Some(q) => {
            println!("butterfly {b}: w = {}", b.weight(&g).unwrap());
            println!("Pr[E(B)]              = {:.6} (exact)", q.existence_prob);
            println!(
                "Pr[B maximum | E(B)]  = {:.6} ({} conditioned trials)",
                q.conditional_max_prob, q.trials
            );
            println!("P(B)                  = {:.6}", q.prob);
        }
    }
}

fn cmd_count(flags: &Flags) {
    flags.expect(&[
        "input",
        "method",
        "trials",
        "seed",
        "delta",
        "threads",
        "mem-stats",
    ]);
    let g = load(flags);
    let trials: u64 = flags.get_parsed("trials", 5_000);
    let seed: u64 = flags.get_parsed("seed", 42);
    let threads: usize = flags.get_parsed("threads", 1);
    let mem_stats: bool = flags.get_parsed("mem-stats", false);
    let expect = bigraph::expected::expected_butterfly_count(&g);
    match flags.get("method").unwrap_or("exact") {
        "exact" => {}
        "fast" => {
            let delta: f64 = flags.get_parsed("delta", 0.05);
            if !(delta > 0.0 && delta < 1.0) {
                fail("--delta must be in (0, 1)");
            }
            memtrack::reset_peak();
            let est = mpmb_core::estimate_fast(
                &g,
                &mpmb_core::SublinearConfig {
                    trials,
                    seed,
                    delta,
                },
                threads,
            );
            if mem_stats {
                let peak = memtrack::peak_bytes();
                eprintln!(
                    "peak allocation: {peak} bytes ({:.1} MiB)",
                    peak as f64 / (1024.0 * 1024.0)
                );
            }
            println!("expected butterflies (closed form) = {expect:.4}");
            println!(
                "fast estimate = {:.4}  ({:.0}% CI [{:.4}, {:.4}], relative error {:.4}, {} trials)",
                est.estimate,
                100.0 * (1.0 - est.delta),
                est.ci_low,
                est.ci_high,
                est.relative_error,
                est.trials
            );
            return;
        }
        other => fail(&format!("unknown --method `{other}` (expected exact|fast)")),
    }
    memtrack::reset_peak();
    let d = mpmb_core::sample_count_distribution_parallel(&g, trials, seed, threads);
    if mem_stats {
        let peak = memtrack::peak_bytes();
        eprintln!(
            "peak allocation: {peak} bytes ({:.1} MiB)",
            peak as f64 / (1024.0 * 1024.0)
        );
    }
    println!("expected butterflies (closed form) = {expect:.4}");
    println!(
        "sampled mean = {:.4}  variance = {:.4}  ({} trials)",
        d.mean, d.variance, d.trials
    );
    let mut counts: Vec<(u64, u64)> = d.histogram.iter().map(|(&c, &n)| (c, n)).collect();
    counts.sort_unstable();
    println!("count\tfreq");
    for (c, n) in counts.into_iter().take(20) {
        println!("{c}\t{:.4}", n as f64 / d.trials as f64);
    }
}

fn cmd_stats(flags: &Flags) {
    flags.expect(&["input"]);
    let g = load(flags);
    println!("{}", GraphStats::compute(&g));
    println!(
        "backbone angles: left-middles {} / right-middles {}",
        g.backbone_angle_count(Side::Left),
        g.backbone_angle_count(Side::Right)
    );
    println!("top-3 weight sum (w̄): {}", g.top3_weight_sum());
}

fn cmd_generate(flags: &Flags) {
    flags.expect(&["dataset", "scale", "seed", "output"]);
    let name = flags
        .get("dataset")
        .unwrap_or_else(|| fail("--dataset is required"));
    let dataset = match name.to_ascii_lowercase().as_str() {
        "abide" => Dataset::Abide,
        "movielens" => Dataset::MovieLens,
        "jester" => Dataset::Jester,
        "protein" => Dataset::Protein,
        other => fail(&format!("unknown dataset `{other}`")),
    };
    let scale: f64 = flags.get_parsed("scale", 0.01);
    let seed: u64 = flags.get_parsed("seed", 42);
    let g = dataset.generate(scale, seed);
    match flags.get("output") {
        // `.ubg` selects the compact binary format, `.ubgc` the
        // mmap-ready container; anything else is the text edge list.
        Some(path) if path.ends_with(".ubgc") => {
            bigraph::write_container_path(&g, std::path::Path::new(path))
                .unwrap_or_else(|e| fail(&format!("write failed: {e}")));
            eprintln!("wrote {} ({})", path, GraphStats::compute(&g));
        }
        Some(path) => {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
            let out = std::io::BufWriter::new(file);
            let res = if path.ends_with(".ubg") {
                bigraph::io::write_binary(&g, out)
            } else {
                bigraph::io::write_edge_list(&g, out)
            };
            res.unwrap_or_else(|e| fail(&format!("write failed: {e}")));
            eprintln!("wrote {} ({})", path, GraphStats::compute(&g));
        }
        None => {
            let stdout = std::io::stdout();
            bigraph::io::write_edge_list(&g, stdout.lock())
                .unwrap_or_else(|e| fail(&format!("write failed: {e}")));
        }
    }
}

/// `mpmb convert`: re-encodes any readable graph (text, `.ubg` binary,
/// or an existing container) into the on-disk container format.
fn cmd_convert(flags: &Flags) {
    flags.expect(&["input", "output"]);
    let g = load(flags);
    let out = flags
        .get("output")
        .unwrap_or_else(|| fail("--output is required"));
    let checksum = bigraph::write_container_path(&g, std::path::Path::new(out))
        .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    eprintln!(
        "wrote container {} ({}, checksum {:016x})",
        out,
        GraphStats::compute(&g),
        checksum
    );
}

fn cmd_serve(flags: &Flags) {
    flags.expect(&[
        "listen",
        "threads",
        "queue",
        "timeout-ms",
        "cache-capacity",
        "max-solver-threads",
        "mem-budget",
        "trace",
        "graph",
        "checkpoint-dir",
        "checkpoint-every-ms",
        "fault-plan",
        "role",
        "workers",
        "probe-interval-ms",
        "trace-max-bytes",
        "trace-ring",
        "budget-header",
        "fast-escalate",
    ]);
    let trace_cap: Option<u64> = flags.get("trace-max-bytes").map(|v| {
        let n = v
            .parse()
            .unwrap_or_else(|_| fail(&format!("cannot parse --trace-max-bytes value `{v}`")));
        if n == 0 {
            fail("--trace-max-bytes must be positive");
        }
        n
    });
    match flags.get("trace") {
        None | Some("off") | Some("stderr") => {
            if trace_cap.is_some() {
                fail("--trace-max-bytes requires --trace FILE");
            }
            if flags.get("trace") == Some("stderr") {
                obs::set_sink_stderr();
            }
        }
        Some(path) => obs::set_sink_file_capped(path, trace_cap)
            .unwrap_or_else(|e| fail(&format!("cannot open --trace {path}: {e}"))),
    }
    let trace_ring: usize = flags.get_parsed("trace-ring", 64);
    if trace_ring == 0 {
        fail("--trace-ring must be at least 1");
    }
    let cfg = mpmb_serve::ServerConfig {
        listen: flags.get("listen").unwrap_or("127.0.0.1:7700").to_string(),
        threads: flags.get_parsed("threads", 4),
        queue: flags.get_parsed("queue", 64),
        timeout_ms: flags.get_parsed("timeout-ms", 0),
        cache_capacity: flags.get_parsed("cache-capacity", 256),
        max_solver_threads: flags.get_parsed("max-solver-threads", 0),
        checkpoint_dir: flags.get("checkpoint-dir").map(Into::into),
        checkpoint_every_ms: flags.get_parsed("checkpoint-every-ms", 5_000),
        fault_plan: flags.get("fault-plan").map(str::to_string).or_else(|| {
            std::env::var("MPMB_FAULT_PLAN")
                .ok()
                .filter(|s| !s.is_empty())
        }),
        role: flags
            .get("role")
            .map(|r| mpmb_serve::Role::parse(r).unwrap_or_else(|e| fail(&e)))
            .unwrap_or(mpmb_serve::Role::Single),
        // Repeatable and comma-splittable: `--workers a:1,b:2` and
        // `--workers a:1 --workers b:2` both work.
        workers: flags
            .get_all("workers")
            .iter()
            .flat_map(|v| v.split(','))
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect(),
        probe_interval_ms: flags.get_parsed("probe-interval-ms", 1_000),
        mem_budget: parse_mem_budget(flags.get("mem-budget").unwrap_or("0")),
        trace_ring,
        budget_header: flags.get_parsed("budget-header", false),
        fast_escalate: flags.get_parsed("fast-escalate", false),
    };
    mpmb_serve::signal::install();
    let server = mpmb_serve::Server::start(cfg)
        .unwrap_or_else(|e| fail(&format!("cannot start server: {e}")));
    for spec in flags.get_all("graph") {
        let Some((name, src)) = spec.split_once('=') else {
            fail(&format!("--graph expects NAME=SPEC, got `{spec}`"));
        };
        match server.state().registry.load(name, src) {
            Ok(handle) => eprintln!(
                "loaded graph `{name}` from {} ({} x {} vertices, {} edges, {})",
                handle.source,
                handle.num_left(),
                handle.num_right(),
                handle.num_edges(),
                handle.backing_name(),
            ),
            // A graph restored from the checkpoint beats the flag —
            // same name, and the checkpoint's partials depend on it.
            Err(mpmb_serve::RegistryError::Exists(_)) => {
                eprintln!("graph `{name}` already registered (restored from checkpoint)")
            }
            Err(e) => fail(&e.to_string()),
        }
    }
    eprintln!("mpmb-serve listening on {}", server.addr);
    // Blocks until SIGTERM/SIGINT or POST /admin/shutdown drains the pool.
    server.join();
    eprintln!("mpmb-serve drained, exiting");
}

fn cmd_loadgen(flags: &Flags) {
    flags.expect(&[
        "target",
        "requests",
        "concurrency",
        "graph",
        "method",
        "trials",
        "seed",
        "vary-seed",
        "retries",
    ]);
    // `--target` repeats and comma-splits; requests round-robin over
    // the resulting list (one coordinator or several replicas).
    let mut targets: Vec<String> = flags
        .get_all("target")
        .iter()
        .flat_map(|v| v.split(','))
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if targets.is_empty() {
        targets.push("127.0.0.1:7700".to_string());
    }
    let cfg = mpmb_serve::LoadgenConfig {
        targets,
        requests: flags.get_parsed("requests", 100),
        concurrency: flags.get_parsed("concurrency", 4),
        graphs: {
            // Like `--target`: repeatable and comma-splittable.
            let mut graphs: Vec<String> = flags
                .get_all("graph")
                .iter()
                .flat_map(|v| v.split(','))
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if graphs.is_empty() {
                graphs.push("default".to_string());
            }
            graphs
        },
        method: flags.get("method").unwrap_or("os").to_string(),
        trials: flags.get_parsed("trials", 2_000),
        seed: flags.get_parsed("seed", 0x5EED),
        vary_seed: flags.get_parsed("vary-seed", true),
        retries: flags.get_parsed("retries", 0),
    };
    let report = mpmb_serve::loadgen::run(&cfg);
    println!("{}", report.render());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--help` anywhere wins, before any flag parsing can trip on it.
    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{USAGE}");
        return;
    }
    let Some((cmd, rest)) = args.split_first() else {
        fail("missing subcommand");
    };
    let flags = Flags::parse(rest);
    match cmd.as_str() {
        "solve" => cmd_solve(&flags),
        "query" => cmd_query(&flags),
        "count" => cmd_count(&flags),
        "exact" => cmd_exact(&flags),
        "stats" => cmd_stats(&flags),
        "generate" => cmd_generate(&flags),
        "convert" => cmd_convert(&flags),
        "serve" => cmd_serve(&flags),
        "loadgen" => cmd_loadgen(&flags),
        other => fail(&format!("unknown subcommand `{other}`")),
    }
}
