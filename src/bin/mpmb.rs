//! `mpmb` — command-line MPMB search over edge-list files.
//!
//! ```text
//! mpmb solve    --input G.tsv [--method os|mcvp|ols|ols-kl] [--trials N]
//!               [--prep N] [--seed N] [--top-k K] [--diverse MAX_SHARED]
//!               [--threads N]
//! mpmb exact    --input G.tsv [--max-uncertain N] [--top-k K]
//! mpmb query    --input G.tsv --u1 A --u2 B --v1 C --v2 D [--trials N] [--seed N]
//! mpmb count    --input G.tsv [--trials N] [--seed N]
//! mpmb stats    --input G.tsv
//! mpmb generate --dataset abide|movielens|jester|protein --scale F
//!               [--seed N] [--output FILE]
//! ```
//!
//! Edge-list format: `LEFT RIGHT WEIGHT PROB` per line (tabs or spaces),
//! `#` comments allowed.

use datasets::Dataset;
use mpmb::prelude::*;
use mpmb_core::{run_os_parallel, top_k_diverse, Distribution};
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: mpmb <solve|exact|query|count|stats|generate> [flags]   (see --help in source header)"
    );
    exit(2)
}

/// Minimal flag parser: `--name value` pairs after the subcommand.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                fail(&format!("unexpected argument `{a}`"));
            };
            let Some(value) = it.next() else {
                fail(&format!("--{name} requires a value"));
            };
            pairs.push((name.to_string(), value.clone()));
        }
        Flags(pairs)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| fail(&format!("cannot parse --{name} value `{v}`"))),
        }
    }
}

fn load(flags: &Flags) -> UncertainBipartiteGraph {
    let path = flags.get("input").unwrap_or_else(|| fail("--input is required"));
    // Dispatches on the binary magic, so both .tsv and .ubg files work.
    bigraph::io::read_auto(std::path::Path::new(path))
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

fn print_ranking(g: &UncertainBipartiteGraph, dist: &Distribution, k: usize, diverse: Option<usize>) {
    let ranking = match diverse {
        Some(max_shared) => top_k_diverse(dist, k, max_shared),
        None => dist.top_k(k),
    };
    if ranking.is_empty() {
        println!("no butterflies found");
        return;
    }
    println!("rank\tbutterfly\tweight\tPr[E(B)]\tP(B)");
    for (i, (b, p)) in ranking.iter().enumerate() {
        println!(
            "{}\t{b}\t{}\t{:.6}\t{:.6}",
            i + 1,
            b.weight(g).unwrap_or(f64::NAN),
            b.existence_prob(g).unwrap_or(f64::NAN),
            p
        );
    }
}

fn cmd_solve(flags: &Flags) {
    let g = load(flags);
    let method = flags.get("method").unwrap_or("ols");
    let trials: u64 = flags.get_parsed("trials", 20_000);
    let prep: u64 = flags.get_parsed("prep", 100);
    let seed: u64 = flags.get_parsed("seed", 42);
    let k: usize = flags.get_parsed("top-k", 1);
    let diverse = flags.get("diverse").map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail(&format!("cannot parse --diverse value `{v}`")))
    });
    let threads: usize = flags.get_parsed("threads", 1);

    let dist = match method {
        "os" => {
            let cfg = OsConfig { trials, seed, ..Default::default() };
            if threads > 1 {
                run_os_parallel(&g, &cfg, threads)
            } else {
                OrderingSampling::new(cfg).run(&g)
            }
        }
        "mcvp" => McVp::new(McVpConfig { trials, seed }).run(&g),
        "ols" => {
            OrderingListingSampling::new(OlsConfig {
                prep_trials: prep,
                seed,
                estimator: EstimatorKind::Optimized { trials },
                ..Default::default()
            })
            .run(&g)
            .distribution
        }
        "ols-kl" => {
            OrderingListingSampling::new(OlsConfig {
                prep_trials: prep,
                seed,
                estimator: EstimatorKind::KarpLuby {
                    policy: KlTrialPolicy::Fixed(trials),
                },
                ..Default::default()
            })
            .run(&g)
            .distribution
        }
        other => fail(&format!("unknown method `{other}`")),
    };
    print_ranking(&g, &dist, k, diverse);
}

fn cmd_exact(flags: &Flags) {
    let g = load(flags);
    let limit: u32 = flags.get_parsed("max-uncertain", 22);
    let k: usize = flags.get_parsed("top-k", 10);
    match mpmb_core::exact_distribution(&g, ExactConfig { max_uncertain_edges: limit }) {
        Ok(dist) => print_ranking(&g, &dist, k, None),
        Err(e) => fail(&e.to_string()),
    }
}

fn cmd_query(flags: &Flags) {
    let g = load(flags);
    let need = |n: &str| -> u32 {
        flags
            .get(n)
            .unwrap_or_else(|| fail(&format!("--{n} is required")))
            .parse()
            .unwrap_or_else(|_| fail(&format!("cannot parse --{n}")))
    };
    let b = mpmb_core::Butterfly::new(
        Left(need("u1")),
        Left(need("u2")),
        Right(need("v1")),
        Right(need("v2")),
    );
    let trials: u64 = flags.get_parsed("trials", 20_000);
    let seed: u64 = flags.get_parsed("seed", 42);
    match mpmb_core::estimate_prob_of(&g, &b, trials, seed) {
        None => fail(&format!("{b} is not a butterfly of the backbone")),
        Some(q) => {
            println!("butterfly {b}: w = {}", b.weight(&g).unwrap());
            println!("Pr[E(B)]              = {:.6} (exact)", q.existence_prob);
            println!("Pr[B maximum | E(B)]  = {:.6} ({} conditioned trials)", q.conditional_max_prob, q.trials);
            println!("P(B)                  = {:.6}", q.prob);
        }
    }
}

fn cmd_count(flags: &Flags) {
    let g = load(flags);
    let trials: u64 = flags.get_parsed("trials", 5_000);
    let seed: u64 = flags.get_parsed("seed", 42);
    let expect = bigraph::expected::expected_butterfly_count(&g);
    let d = mpmb_core::sample_count_distribution(&g, trials, seed);
    println!("expected butterflies (closed form) = {expect:.4}");
    println!("sampled mean = {:.4}  variance = {:.4}  ({} trials)", d.mean, d.variance, d.trials);
    let mut counts: Vec<(u64, u64)> = d.histogram.iter().map(|(&c, &n)| (c, n)).collect();
    counts.sort_unstable();
    println!("count\tfreq");
    for (c, n) in counts.into_iter().take(20) {
        println!("{c}\t{:.4}", n as f64 / d.trials as f64);
    }
}

fn cmd_stats(flags: &Flags) {
    let g = load(flags);
    println!("{}", GraphStats::compute(&g));
    println!(
        "backbone angles: left-middles {} / right-middles {}",
        g.backbone_angle_count(Side::Left),
        g.backbone_angle_count(Side::Right)
    );
    println!("top-3 weight sum (w̄): {}", g.top3_weight_sum());
}

fn cmd_generate(flags: &Flags) {
    let name = flags.get("dataset").unwrap_or_else(|| fail("--dataset is required"));
    let dataset = match name.to_ascii_lowercase().as_str() {
        "abide" => Dataset::Abide,
        "movielens" => Dataset::MovieLens,
        "jester" => Dataset::Jester,
        "protein" => Dataset::Protein,
        other => fail(&format!("unknown dataset `{other}`")),
    };
    let scale: f64 = flags.get_parsed("scale", 0.01);
    let seed: u64 = flags.get_parsed("seed", 42);
    let g = dataset.generate(scale, seed);
    match flags.get("output") {
        Some(path) => {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
            let out = std::io::BufWriter::new(file);
            // `.ubg` extension selects the compact binary format.
            let res = if path.ends_with(".ubg") {
                bigraph::io::write_binary(&g, out)
            } else {
                bigraph::io::write_edge_list(&g, out)
            };
            res.unwrap_or_else(|e| fail(&format!("write failed: {e}")));
            eprintln!("wrote {} ({})", path, GraphStats::compute(&g));
        }
        None => {
            let stdout = std::io::stdout();
            bigraph::io::write_edge_list(&g, stdout.lock())
                .unwrap_or_else(|e| fail(&format!("write failed: {e}")));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        fail("missing subcommand");
    };
    let flags = Flags::parse(rest);
    match cmd.as_str() {
        "solve" => cmd_solve(&flags),
        "query" => cmd_query(&flags),
        "count" => cmd_count(&flags),
        "exact" => cmd_exact(&flags),
        "stats" => cmd_stats(&flags),
        "generate" => cmd_generate(&flags),
        other => fail(&format!("unknown subcommand `{other}`")),
    }
}
