#![warn(missing_docs)]

//! # mpmb — Most Probable Maximum Weighted Butterfly search
//!
//! Facade crate for the MPMB workspace: a from-scratch Rust reproduction of
//! *"Most Probable Maximum Weighted Butterfly Search"* (ICDE 2025).
//!
//! The problem: on an **uncertain weighted bipartite network**, where each
//! edge carries a weight and an independent existence probability, find the
//! butterfly (2×2 biclique) with the highest probability of being the
//! *maximum-weighted* butterfly across all possible worlds. Computing this
//! probability is #P-Hard, so the library provides three sampling solvers:
//!
//! * [`McVp`](mpmb_core::McVp) — Monte-Carlo with Vertex Priority, the
//!   baseline (Algorithm 1);
//! * [`OrderingSampling`](mpmb_core::OrderingSampling) — the paper's OS
//!   method (Algorithm 2), ~10³× faster than the baseline;
//! * [`OrderingListingSampling`](mpmb_core::OrderingListingSampling) — the
//!   OLS method (Algorithm 3), with a choice of probability estimators:
//!   the paper's optimized shared-trial sampler (Algorithm 5) or classical
//!   Karp-Luby (Algorithm 4).
//!
//! ```
//! use mpmb::prelude::*;
//!
//! // Figure 1(a) of the paper.
//! let mut b = GraphBuilder::new();
//! b.add_edge(Left(0), Right(0), 2.0, 0.5).unwrap();
//! b.add_edge(Left(0), Right(1), 2.0, 0.6).unwrap();
//! b.add_edge(Left(0), Right(2), 1.0, 0.8).unwrap();
//! b.add_edge(Left(1), Right(0), 3.0, 0.3).unwrap();
//! b.add_edge(Left(1), Right(1), 3.0, 0.4).unwrap();
//! b.add_edge(Left(1), Right(2), 1.0, 0.7).unwrap();
//! let g = b.build().unwrap();
//!
//! let dist = OrderingSampling::new(OsConfig { trials: 5_000, seed: 42, ..Default::default() })
//!     .run(&g);
//! let (butterfly, p) = dist.mpmb().expect("graph contains butterflies");
//! println!("MPMB = {butterfly} with P ≈ {p:.4}");
//! ```

pub use bigraph;
pub use datasets;
pub use mpmb_core;

/// One-stop imports for typical library use.
pub mod prelude {
    pub use bigraph::{
        BuildError, EdgeId, GraphBuilder, GraphStats, Left, PossibleWorld, Right, Side,
        UncertainBipartiteGraph, Weight,
    };
    pub use mpmb_core::{
        Butterfly, Distribution, EstimatorKind, ExactConfig, KlTrialPolicy, McVp, McVpConfig,
        OlsConfig, OrderingListingSampling, OrderingSampling, OsConfig,
    };
}
